"""Workload-shift detection (paper Section 8, "Shifting workloads").

"Flood could periodically evaluate the cost of the current layout on
queries over a recent time window. If the cost exceeds a threshold, Flood
can replace the layout." This module implements exactly that loop:

- :class:`WorkloadMonitor` keeps a sliding window of executed queries and
  their measured times, plus the baseline established right after the last
  retrain;
- when the recent average exceeds ``threshold`` times the baseline (with a
  minimum window), it signals that retraining is worthwhile;
- :meth:`AdaptiveFlood.query` wires the monitor to an actual index and
  retrains in place when signalled, reproducing the Figure 10 spike-and-
  recover pattern without manual retrain triggers.
"""

from __future__ import annotations

from collections import deque

from repro.bench.harness import build_flood
from repro.core.cost import CostModel
from repro.query.predicate import Query
from repro.query.stats import QueryStats
from repro.storage.table import Table
from repro.storage.visitor import Visitor


class WorkloadMonitor:
    """Sliding-window cost monitor with a retrain signal.

    Parameters
    ----------
    window:
        Number of recent queries considered.
    threshold:
        Signal retrain when ``recent_avg > threshold * baseline_avg``.
    min_samples:
        Do not signal before this many queries in both the baseline and
        the recent window.
    """

    def __init__(self, window: int = 50, threshold: float = 2.0, min_samples: int = 20):
        if window < 1 or min_samples < 1:
            raise ValueError("window and min_samples must be >= 1")
        if threshold <= 1.0:
            raise ValueError("threshold must exceed 1.0")
        self.window = int(window)
        self.threshold = float(threshold)
        self.min_samples = int(min_samples)
        self._recent: deque[tuple[Query, float]] = deque(maxlen=window)
        self._baseline_sum = 0.0
        self._baseline_count = 0

    def record(self, query: Query, seconds: float) -> None:
        """Record one executed query and its measured time."""
        self._recent.append((query, float(seconds)))
        # The baseline accumulates only until it has enough mass; it is
        # reset on retrain so "normal" always means the current layout.
        if self._baseline_count < self.window:
            self._baseline_sum += float(seconds)
            self._baseline_count += 1

    @property
    def baseline_avg(self) -> float:
        if self._baseline_count == 0:
            return 0.0
        return self._baseline_sum / self._baseline_count

    @property
    def recent_avg(self) -> float:
        if not self._recent:
            return 0.0
        return sum(t for _, t in self._recent) / len(self._recent)

    def should_retrain(self) -> bool:
        """True when the recent window is significantly above baseline."""
        if (
            self._baseline_count < self.min_samples
            or len(self._recent) < self.min_samples
        ):
            return False
        baseline = self.baseline_avg
        if baseline <= 0:
            return False
        return self.recent_avg > self.threshold * baseline

    def recent_queries(self) -> list[Query]:
        """The retraining workload: the current window's queries."""
        return [q for q, _ in self._recent]

    def reset(self) -> None:
        """Start a fresh baseline (call after retraining)."""
        self._recent.clear()
        self._baseline_sum = 0.0
        self._baseline_count = 0


class AdaptiveFlood:
    """A self-retraining Flood: monitor + automatic layout replacement.

    Parameters
    ----------
    table:
        The table to index.
    initial_queries:
        Workload used for the first layout.
    cost_model:
        Cost model for optimization (None = the calibrated default).
    monitor:
        A :class:`WorkloadMonitor` (None = defaults).
    """

    def __init__(
        self,
        table: Table,
        initial_queries,
        cost_model: CostModel | None = None,
        monitor: WorkloadMonitor | None = None,
        seed: int = 0,
    ):
        self._table = table
        self._cost_model = cost_model
        self._seed = seed
        self.monitor = monitor or WorkloadMonitor()
        self.retrains = 0
        self.index, self.optimization = build_flood(
            table, initial_queries, cost_model=cost_model, seed=seed
        )

    def query(self, query: Query, visitor: Visitor) -> QueryStats:
        """Execute a query; retrain transparently when the monitor fires."""
        stats = self.index.query(query, visitor)
        self.monitor.record(query, stats.total_time)
        if self.monitor.should_retrain():
            self._retrain()
        return stats

    def _retrain(self) -> None:
        queries = self.monitor.recent_queries()
        self.index, self.optimization = build_flood(
            self._table, queries, cost_model=self._cost_model,
            seed=self._seed + self.retrains + 1,
        )
        self.monitor.reset()
        self.retrains += 1
