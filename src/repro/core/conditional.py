"""Conditional (correlation-aware) CDF flattening (paper Section 6).

Independent per-attribute flattening yields non-uniform cells when grid
dimensions are correlated. The paper discusses the fix: "for each pair of
correlated dimensions, one could ... train a conditional CDF that creates a
1-D model for attribute A within each column of attribute B" — and reports
that in their benchmarks it "did not significantly improve performance ...
but did significantly increase index size", so Flood does not use it.

We implement it anyway (``FloodIndex(flatten='conditional')``) so the
claim can be checked: see ``benchmarks/bench_ablation_conditional.py``.

For each grid dimension after the first, the most |rank|-correlated earlier
grid dimension is found on a sample; above ``correlation_threshold`` the
dimension gets one sub-CDF per column of that predecessor, otherwise an
independent model. Query-time column ranges take the union over all
predecessor columns, which keeps projection sound at the cost of wider
ranges — one reason conditional CDFs underdeliver.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BuildError
from repro.ml.cdf import EmpiricalCDF


def rank_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation of two columns (ties get average ranks)."""
    from scipy.stats import rankdata

    a = np.asarray(a)
    b = np.asarray(b)
    if a.size != b.size or a.size < 2:
        raise BuildError("correlation needs two equal-length columns")
    ra = rankdata(a).astype(np.float64)
    rb = rankdata(b).astype(np.float64)
    ra -= ra.mean()
    rb -= rb.mean()
    denom = float(np.sqrt((ra * ra).sum() * (rb * rb).sum()))
    if denom == 0.0:
        return 0.0
    return float((ra * rb).sum() / denom)


class ConditionalFlattener:
    """Per-dimension CDFs, conditioned on a correlated predecessor.

    Duck-types the :class:`repro.core.flatten.Flattener` interface used by
    :class:`repro.core.index.FloodIndex` (``column_of`` / ``column_range`` /
    ``domain`` / ``size_bytes``), but must be *fitted with the layout's
    column counts* because conditioning is per predecessor column.

    Parameters
    ----------
    table, grid_dims, columns:
        The table and the layout's grid dimensions with their column counts.
    correlation_threshold:
        Minimum |rank correlation| to condition on a predecessor.
    sample_size:
        Rows used for correlation detection.
    """

    def __init__(
        self,
        table,
        grid_dims,
        columns,
        correlation_threshold: float = 0.5,
        sample_size: int = 5000,
        seed: int = 0,
    ):
        grid_dims = list(grid_dims)
        columns = list(columns)
        if len(grid_dims) != len(columns):
            raise BuildError("grid_dims and columns must align")
        self.grid_dims = grid_dims
        self.columns = dict(zip(grid_dims, columns))
        self._bounds = {}
        self._independent: dict[str, EmpiricalCDF] = {}
        #: dim -> (predecessor dim, [sub-CDF per predecessor column])
        self._conditional: dict[str, tuple[str, list[EmpiricalCDF | None]]] = {}

        rng = np.random.default_rng(seed)
        n = table.num_rows
        sample_rows = (
            np.sort(rng.choice(n, size=min(sample_size, n), replace=False))
            if n
            else np.empty(0, dtype=np.int64)
        )
        values_by_dim = {dim: table.values(dim) for dim in grid_dims}
        for dim in grid_dims:
            if values_by_dim[dim].size == 0:
                raise BuildError(f"cannot flatten empty dimension {dim!r}")
            self._bounds[dim] = (
                int(values_by_dim[dim].min()),
                int(values_by_dim[dim].max()),
            )

        # Fit in layout order; each dim may condition on an earlier one
        # whose assignment is already known.
        assignments: dict[str, np.ndarray] = {}
        for i, dim in enumerate(grid_dims):
            values = values_by_dim[dim]
            predecessor = self._pick_predecessor(
                dim, grid_dims[:i], values_by_dim, sample_rows,
                correlation_threshold,
            )
            if predecessor is None:
                model = EmpiricalCDF(values)
                self._independent[dim] = model
                assignments[dim] = self._bucket(model.evaluate(values), dim)
            else:
                pred_cols = assignments[predecessor]
                sub_models: list[EmpiricalCDF | None] = []
                assignment = np.zeros(values.size, dtype=np.int64)
                for col in range(self.columns[predecessor]):
                    mask = pred_cols == col
                    if not mask.any():
                        sub_models.append(None)
                        continue
                    model = EmpiricalCDF(values[mask])
                    sub_models.append(model)
                    assignment[mask] = self._bucket(
                        model.evaluate(values[mask]), dim
                    )
                self._conditional[dim] = (predecessor, sub_models)
                assignments[dim] = assignment
        self._assignments = assignments

    def _pick_predecessor(
        self, dim, earlier, values_by_dim, sample_rows, threshold
    ):
        best_dim, best_corr = None, threshold
        if sample_rows.size < 2:
            return None
        target = values_by_dim[dim][sample_rows]
        for other in earlier:
            # Conditioning on a single-column predecessor is pointless.
            if self.columns[other] < 2:
                continue
            corr = abs(rank_correlation(values_by_dim[other][sample_rows], target))
            if corr >= best_corr:
                best_dim, best_corr = other, corr
        return best_dim

    def _bucket(self, cdf: np.ndarray, dim: str) -> np.ndarray:
        cols = self.columns[dim]
        return np.clip((cdf * cols).astype(np.int64), 0, cols - 1)

    # ------------------------------------------------- Flattener duck-typing
    def domain(self, dim: str) -> tuple[int, int]:
        return self._bounds[dim]

    def conditioned_on(self, dim: str) -> str | None:
        """The predecessor ``dim`` conditions on, or None if independent."""
        pair = self._conditional.get(dim)
        return pair[0] if pair else None

    def exactable(self, dim: str) -> bool:
        """Whether interior columns of ``dim`` are guaranteed in-range.

        False for conditioned dimensions: their query column range is a
        union over predecessor columns, so a point can sit in an interior
        column of the union while its value is outside the query range —
        every column must be check-filtered. (Another reason conditional
        CDFs underdeliver, beyond their size.)
        """
        return dim not in self._conditional

    def column_of(self, dim: str, values, num_columns: int) -> np.ndarray:
        """Build-time column assignment (values must be the fitted table's
        column, in table order — conditioning requires row alignment)."""
        self._check_columns(dim, num_columns)
        values = np.asarray(values)
        fitted = self._assignments[dim]
        if values.size != fitted.size:
            raise BuildError(
                "conditional flattening assigns columns only for the fitted "
                "table (row alignment is required)"
            )
        return fitted

    def column_range(
        self, dim: str, low: int, high: int, num_columns: int
    ) -> tuple[int, int]:
        """Sound inclusive column range: the union over predecessor columns."""
        self._check_columns(dim, num_columns)
        cols = self.columns[dim]
        if dim in self._independent:
            model = self._independent[dim]
            lo_hi = np.clip(
                (model.evaluate(np.array([low, high])) * cols).astype(np.int64),
                0,
                cols - 1,
            )
            return int(lo_hi[0]), int(lo_hi[1])
        _, sub_models = self._conditional[dim]
        first, last = cols - 1, 0
        for model in sub_models:
            if model is None:
                continue
            lo_hi = np.clip(
                (model.evaluate(np.array([low, high])) * cols).astype(np.int64),
                0,
                cols - 1,
            )
            first = min(first, int(lo_hi[0]))
            last = max(last, int(lo_hi[1]))
        return (first, last) if first <= last else (0, cols - 1)

    def _check_columns(self, dim: str, num_columns: int) -> None:
        if dim not in self.columns:
            raise BuildError(f"dimension {dim!r} was not fitted")
        if num_columns != self.columns[dim]:
            raise BuildError(
                f"fitted with {self.columns[dim]} columns for {dim!r}, "
                f"asked for {num_columns}"
            )

    def size_bytes(self) -> int:
        """Conditional CDFs are big — the paper's stated reason to skip them."""
        total = 16 * len(self.grid_dims)
        for model in self._independent.values():
            total += model.sorted_values.nbytes
        for _, sub_models in self._conditional.values():
            for model in sub_models:
                if model is not None:
                    total += model.sorted_values.nbytes
        return int(total)
