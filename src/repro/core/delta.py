"""Insert support via a delta buffer (paper Section 8, "Insertions").

Flood proper is read-only; the paper sketches two extensions: per-cell gaps
and "a delta index [39] in which updates are buffered and periodically
merged into the data store, similar to Bigtable [2]". This module
implements the delta-index variant:

- inserts append to an in-memory row buffer;
- queries run against the clustered Flood index *and* a brute-force scan of
  the (small) buffer, merging visitor results;
- ``merge()`` folds the buffer into the table and rebuilds the index, and
  is triggered automatically when the buffer exceeds ``merge_threshold``.

The class satisfies the queryable-index protocol
(:mod:`repro.core.protocol`), so it can sit directly behind
:class:`~repro.core.engine.BatchQueryEngine`, the micro-batcher, and the
TCP server — including the sharded+buffered combination (pass
``num_shards`` / ``backend`` and the inner index is a
:class:`~repro.core.shard.ShardedFloodIndex` whose scans fan out across
cores while the buffer keeps absorbing writes).

For a *serving* event loop, the blocking :meth:`merge` is split in two:
:meth:`prepare_merge` builds the new clustered table + index from a
snapshot (safe to run on an executor thread while reads keep hitting the
old index + buffer, and while new inserts keep arriving), and
:meth:`commit_merge` atomically swaps it in, dropping exactly the
snapshotted rows from the buffer — rows inserted mid-merge stay buffered
and visible throughout. :meth:`prepare_relayout` is the same lifecycle
for a workload shift: it additionally learns a fresh layout from a
recent-query window before rebuilding (paper Section 8, "Shifting
workloads", served live via ``repro serve --adaptive``).

Every mutation bumps a monotonically-increasing ``generation`` counter.
The serving layer's :class:`~repro.serve.cache.ResultCache` keys entries
on it (:meth:`ResultCache.make_key`'s ``generation`` argument), so a
result cached before an insert can never be served after it — the key
simply no longer matches, and the stale entry ages out of the LRU.

Buffer columns adopt the table's per-column dtype: a float-valued table
buffers floats (``insert`` used to force ``int(v)``, silently truncating
float dimensions — the same bug class PR 4 fixed in the visitors).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.index import FloodIndex
from repro.core.layout import GridLayout
from repro.errors import BuildError, SchemaError
from repro.query.predicate import Query
from repro.query.stats import QueryStats
from repro.storage.table import Table
from repro.storage.visitor import Visitor


@dataclass
class PreparedMerge:
    """An off-loop-built replacement index awaiting its atomic swap.

    Produced by :meth:`DeltaBufferedFlood.prepare_merge` /
    :meth:`~DeltaBufferedFlood.prepare_relayout`; consumed exactly once
    by :meth:`~DeltaBufferedFlood.commit_merge`.
    """

    index: FloodIndex
    #: Buffered rows folded into ``index`` (the snapshot size); commit
    #: drops exactly this many from the head of the buffer.
    rows_merged: int
    #: Wall time of the prepare (build) phase.
    seconds: float
    #: New layout when this was a re-layout, else ``None``.
    layout: GridLayout | None = None


class DeltaBufferedFlood:
    """A Flood index that accepts inserts through a delta buffer.

    Parameters
    ----------
    layout:
        Grid layout for the underlying Flood index.
    merge_threshold:
        Automatic merge once the buffer holds this many rows (``None``
        disables auto-merge; the serving layer disables it and runs
        merges off-loop itself).
    num_shards:
        ``None`` (default) builds a plain :class:`FloodIndex` inside;
        ``0`` shards one per core, ``>= 1`` that many shards
        (:class:`~repro.core.shard.ShardedFloodIndex` semantics).
    backend:
        Scan-backend *spec string* (``'serial'`` / ``'thread'`` /
        ``'process'``) for the sharded inner index. Specs only — a
        resolved backend instance is bound to one table, and every merge
        builds a new table (the spec re-resolves per rebuild, refreshing
        e.g. the process backend's shared-memory attachment).
    min_parallel_points:
        Passed to the sharded inner index (``None`` = its default).
    flood_kwargs:
        Passed through to :class:`FloodIndex` (flatten, refinement, delta).
    """

    name = "Flood-delta"

    def __init__(
        self,
        layout: GridLayout,
        merge_threshold: int | None = 4096,
        num_shards: int | None = None,
        backend: str | None = None,
        min_parallel_points: int | None = None,
        **flood_kwargs,
    ):
        if backend is not None and not isinstance(backend, str):
            raise BuildError(
                "DeltaBufferedFlood needs a backend *spec string*; resolved "
                "backends bind to one table and merges rebuild the table"
            )
        self.layout = layout
        self.merge_threshold = merge_threshold
        self._num_shards = num_shards
        self._backend_spec = backend
        self._min_parallel_points = min_parallel_points
        self._flood_kwargs = flood_kwargs
        self._index: FloodIndex | None = None
        self._dims: list[str] = []
        self._dtypes: dict[str, np.dtype] = {}
        self._buffer: dict[str, list] = {}
        self.merges = 0
        self.retrains = 0
        self.last_merge_seconds = 0.0
        #: Monotonic mutation counter: bumped by every insert/insert_many/
        #: merge. Result caches key on it so mutations invalidate by
        #: construction (see :meth:`repro.serve.cache.ResultCache.make_key`).
        self.generation = 0

    # ------------------------------------------------------------------ build
    def _make_index(self, layout: GridLayout | None = None) -> FloodIndex:
        """A fresh (unbuilt) inner index per the sharding configuration."""
        layout = layout if layout is not None else self.layout
        if self._num_shards is None:
            return FloodIndex(layout, **self._flood_kwargs)
        from repro.core.shard import MIN_PARALLEL_POINTS, ShardedFloodIndex

        return ShardedFloodIndex(
            layout,
            num_shards=self._num_shards or None,
            min_parallel_points=(
                MIN_PARALLEL_POINTS
                if self._min_parallel_points is None
                else self._min_parallel_points
            ),
            backend=self._backend_spec,
            **self._flood_kwargs,
        )

    def build(self, table: Table) -> "DeltaBufferedFlood":
        self._index = self._make_index().build(table)
        self._dims = table.dims
        # Per-column dtype adopted from the table (values(dim, 0, 0) is an
        # empty decode, so this costs nothing even on compressed columns).
        self._dtypes = {
            dim: np.asarray(table.values(dim, 0, 0)).dtype for dim in self._dims
        }
        self._buffer = {dim: [] for dim in self._dims}
        return self

    @property
    def table(self) -> Table:
        if self._index is None:
            raise BuildError(f"{self.name} index used before build()")
        return self._index.table

    @property
    def index(self) -> FloodIndex:
        """The current inner clustered index (replaced by every merge)."""
        if self._index is None:
            raise BuildError(f"{self.name} index used before build()")
        return self._index

    # ----------------------------------------------------------------- kernel
    @property
    def kernel_tier(self) -> str | None:
        """The inner index's resolved fused-kernel tier (or None)."""
        return self.index.kernel_tier

    def use_kernel(self, kernel: str | None) -> str | None:
        """Swap the fused-kernel tier on the inner index *and* the rebuild
        configuration, so merges and re-layouts keep the new tier."""
        old = self.index.use_kernel(kernel)
        self._flood_kwargs["kernel"] = kernel
        return old

    @property
    def buffered_rows(self) -> int:
        return len(next(iter(self._buffer.values()))) if self._buffer else 0

    # ----------------------------------------------------------------- insert
    def insert(self, row: dict) -> None:
        """Buffer one row (mapping of every dimension to a value)."""
        if set(row) != set(self._dims):
            raise SchemaError(
                f"row dims {sorted(row)} do not match table dims {sorted(self._dims)}"
            )
        for dim, value in row.items():
            # dtype.type coerces to the column's dtype — int columns get
            # exact int64s, float columns keep their fractional part.
            self._buffer[dim].append(self._dtypes[dim].type(value))
        self.generation += 1
        self._maybe_auto_merge()

    def insert_many(self, rows: dict) -> None:
        """Buffer a column-oriented batch (dim -> array of values)."""
        if set(rows) != set(self._dims):
            raise SchemaError(
                f"batch dims {sorted(rows)} do not match table dims {sorted(self._dims)}"
            )
        lengths = {len(np.atleast_1d(v)) for v in rows.values()}
        if len(lengths) != 1:
            raise SchemaError("batch columns disagree on length")
        for dim, values in rows.items():
            self._buffer[dim].extend(
                np.atleast_1d(np.asarray(values)).astype(self._dtypes[dim]).tolist()
            )
        self.generation += 1
        self._maybe_auto_merge()

    def _maybe_auto_merge(self) -> None:
        if (
            self.merge_threshold is not None
            and self.merge_threshold > 0
            and self.buffered_rows >= self.merge_threshold
        ):
            self.merge()

    def _buffer_arrays(self, n: int) -> dict[str, np.ndarray]:
        """The first ``n`` buffered rows as per-dtype column arrays.

        Slicing (not whole-list conversion) makes this a consistent
        snapshot even while another thread appends — exactly the
        prepare-merge case, where inserts keep landing mid-build.
        """
        return {
            dim: np.asarray(self._buffer[dim][:n], dtype=self._dtypes[dim])
            for dim in self._dims
        }

    # ------------------------------------------------------------------ merge
    def prepare_merge(self) -> PreparedMerge | None:
        """Build the post-merge table + index from a buffer snapshot.

        Pure with respect to serving state: ``self`` is only read, so
        this can run on an executor thread while the event loop keeps
        answering queries from the old index + buffer and keeps
        accepting inserts (they land *behind* the snapshot and survive
        the commit). Returns ``None`` when there is nothing to merge.
        """
        n = self.buffered_rows
        if n == 0:
            return None
        start = time.perf_counter()
        buffered = self._buffer_arrays(n)
        combined = {
            dim: np.concatenate([self.table.values(dim), buffered[dim]])
            for dim in self._dims
        }
        index = self._make_index().build(
            Table(combined, compress=self.table.compressed)
        )
        return PreparedMerge(
            index=index, rows_merged=n, seconds=time.perf_counter() - start
        )

    def commit_merge(self, prepared: PreparedMerge | None) -> FloodIndex | None:
        """Atomically swap a prepared index in; returns the *old* inner
        index (so the caller can retire its scan backend off-loop).

        Must be serialized against query execution (the serving layer
        runs it through the batcher's write barrier); the swap itself is
        a few pointer assignments plus dropping the merged prefix of the
        buffer, so the pause is microseconds regardless of table size.
        """
        if prepared is None:
            return None
        old = self._index
        self._index = prepared.index
        for dim in self._dims:
            del self._buffer[dim][: prepared.rows_merged]
        if prepared.layout is not None:
            self.layout = prepared.layout
            self.retrains += 1
        else:
            self.merges += 1
        self.generation += 1
        self.last_merge_seconds = prepared.seconds
        return old

    def merge(self) -> None:
        """Fold the buffer into the table and rebuild, blocking.

        The library-use path (and the auto-merge trigger); the serving
        layer uses :meth:`prepare_merge` + :meth:`commit_merge` instead
        so the rebuild never blocks its event loop.
        """
        self.commit_merge(self.prepare_merge())

    # ---------------------------------------------------------------- adapt
    def prepare_relayout(
        self, queries, cost_model=None, seed: int = 0
    ) -> PreparedMerge:
        """Learn a fresh layout for ``queries`` and build it, off-loop.

        The workload-shift half of Section 8: when a
        :class:`~repro.core.monitor.WorkloadMonitor` signals that the
        current layout has gone stale, the serving layer calls this on
        an executor thread and commits the result through the same
        atomic-swap path as a merge. The rebuild folds the current
        buffer in too (it is re-clustering the table anyway).
        """
        from repro.core.optimizer import find_optimal_layout

        if cost_model is None:
            from repro.bench.harness import default_cost_model

            cost_model = default_cost_model()
        start = time.perf_counter()
        n = self.buffered_rows
        buffered = self._buffer_arrays(n)
        combined = {
            dim: np.concatenate([self.table.values(dim), buffered[dim]])
            for dim in self._dims
        }
        table = Table(combined, compress=self.table.compressed)
        result = find_optimal_layout(table, list(queries), cost_model, seed=seed)
        index = self._make_index(layout=result.layout).build(table)
        return PreparedMerge(
            index=index,
            rows_merged=n,
            seconds=time.perf_counter() - start,
            layout=result.layout,
        )

    # ------------------------------------------------------------------ query
    def query(
        self, query: Query, visitor: Visitor, enum_cache: dict | None = None
    ) -> QueryStats:
        """Query the main index, then scan the delta buffer brute-force.

        ``enum_cache`` is the engine's shared enumeration memo, forwarded
        to the inner index (the protocol surface the batch engine needs).
        """
        stats = self._index.query(query, visitor, enum_cache=enum_cache)
        return self._scan_buffer(query, visitor, stats)

    def query_percell(self, query: Query, visitor: Visitor) -> QueryStats:
        """The reference path: seed per-cell loop + the same buffer scan."""
        stats = self._index.query_percell(query, visitor)
        return self._scan_buffer(query, visitor, stats)

    def _scan_buffer(
        self, query: Query, visitor: Visitor, stats: QueryStats
    ) -> QueryStats:
        n = self.buffered_rows
        if n == 0:
            return stats
        start = time.perf_counter()
        mask = np.ones(n, dtype=bool)
        buffer_table = Table(self._buffer_arrays(n), compress=False)
        for dim, (low, high) in query.ranges.items():
            if dim not in buffer_table:
                continue
            values = buffer_table.values(dim)
            mask &= (values >= low) & (values <= high)
        matched = int(np.count_nonzero(mask))
        if matched:
            visitor.visit(buffer_table, 0, n, mask)
        # One measurement feeds both counters, so scan_time and
        # total_time agree exactly (two perf_counter() calls used to
        # hand total_time the larger delta).
        elapsed = time.perf_counter() - start
        stats.points_scanned += n
        stats.points_matched += matched
        stats.scan_time += elapsed
        stats.total_time += elapsed
        return stats

    # ------------------------------------------------------------------- misc
    def size_bytes(self) -> int:
        buffered = sum(
            self._dtypes[dim].itemsize * self.buffered_rows for dim in self._dims
        )
        return self._index.size_bytes() + buffered

    def shutdown(self) -> None:
        """Retire the inner index's *resolved* scan backend, if any.

        Only meaningful for the sharded+buffered combination with a
        process backend (worker pool + shared-memory segments); a no-op
        everywhere else. The serving layer retires superseded backends
        after each merge swap; this handles the final one at exit.
        """
        backend = getattr(self._index, "_backend", None)
        if backend is not None:
            backend.shutdown()
