"""Insert support via a delta buffer (paper Section 8, "Insertions").

Flood proper is read-only; the paper sketches two extensions: per-cell gaps
and "a delta index [39] in which updates are buffered and periodically
merged into the data store, similar to Bigtable [2]". This module
implements the delta-index variant:

- inserts append to an in-memory row buffer;
- queries run against the clustered Flood index *and* a brute-force scan of
  the (small) buffer, merging visitor results;
- ``merge()`` folds the buffer into the table and rebuilds the index, and
  is triggered automatically when the buffer exceeds ``merge_threshold``.

Every mutation bumps a monotonically-increasing ``generation`` counter.
The serving layer's :class:`~repro.serve.cache.ResultCache` keys entries
on it (:meth:`ResultCache.make_key`'s ``generation`` argument), so a
result cached before an insert can never be served after it — the key
simply no longer matches, and the stale entry ages out of the LRU.
(The server reads ``engine.index.generation``; putting a delta-buffered
index *behind* the engine end-to-end is a ROADMAP follow-on — today the
wiring is exercised directly against the cache.)
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.index import FloodIndex
from repro.core.layout import GridLayout
from repro.errors import SchemaError
from repro.query.predicate import Query
from repro.query.stats import QueryStats
from repro.storage.table import Table
from repro.storage.visitor import Visitor


class DeltaBufferedFlood:
    """A Flood index that accepts inserts through a delta buffer.

    Parameters
    ----------
    layout:
        Grid layout for the underlying Flood index.
    merge_threshold:
        Automatic merge once the buffer holds this many rows (None
        disables auto-merge).
    flood_kwargs:
        Passed through to :class:`FloodIndex` (flatten, refinement, delta).
    """

    def __init__(
        self,
        layout: GridLayout,
        merge_threshold: int | None = 4096,
        **flood_kwargs,
    ):
        self.layout = layout
        self.merge_threshold = merge_threshold
        self._flood_kwargs = flood_kwargs
        self._index: FloodIndex | None = None
        self._dims: list[str] = []
        self._buffer: dict[str, list[int]] = {}
        self.merges = 0
        self.last_merge_seconds = 0.0
        #: Monotonic mutation counter: bumped by every insert/insert_many/
        #: merge. Result caches key on it so mutations invalidate by
        #: construction (see :meth:`repro.serve.cache.ResultCache.make_key`).
        self.generation = 0

    # ------------------------------------------------------------------ build
    def build(self, table: Table) -> "DeltaBufferedFlood":
        self._index = FloodIndex(self.layout, **self._flood_kwargs).build(table)
        self._dims = table.dims
        self._buffer = {dim: [] for dim in self._dims}
        return self

    @property
    def table(self) -> Table:
        return self._index.table

    @property
    def buffered_rows(self) -> int:
        return len(next(iter(self._buffer.values()))) if self._buffer else 0

    # ----------------------------------------------------------------- insert
    def insert(self, row: dict) -> None:
        """Buffer one row (mapping of every dimension to an int value)."""
        if set(row) != set(self._dims):
            raise SchemaError(
                f"row dims {sorted(row)} do not match table dims {sorted(self._dims)}"
            )
        for dim, value in row.items():
            self._buffer[dim].append(int(value))
        self.generation += 1
        if (
            self.merge_threshold is not None
            and self.buffered_rows >= self.merge_threshold
        ):
            self.merge()

    def insert_many(self, rows: dict) -> None:
        """Buffer a column-oriented batch (dim -> array of values)."""
        if set(rows) != set(self._dims):
            raise SchemaError(
                f"batch dims {sorted(rows)} do not match table dims {sorted(self._dims)}"
            )
        lengths = {len(np.atleast_1d(v)) for v in rows.values()}
        if len(lengths) != 1:
            raise SchemaError("batch columns disagree on length")
        for dim, values in rows.items():
            self._buffer[dim].extend(int(v) for v in np.atleast_1d(values))
        self.generation += 1
        if (
            self.merge_threshold is not None
            and self.buffered_rows >= self.merge_threshold
        ):
            self.merge()

    # ------------------------------------------------------------------ merge
    def merge(self) -> None:
        """Fold the buffer into the table and rebuild the clustered index."""
        if self.buffered_rows == 0:
            return
        start = time.perf_counter()
        combined = {
            dim: np.concatenate(
                [self.table.values(dim), np.asarray(self._buffer[dim], dtype=np.int64)]
            )
            for dim in self._dims
        }
        self.build(Table(combined, compress=self.table.compressed))
        self.merges += 1
        self.generation += 1
        self.last_merge_seconds = time.perf_counter() - start

    # ------------------------------------------------------------------ query
    def query(self, query: Query, visitor: Visitor) -> QueryStats:
        """Query the main index, then scan the delta buffer brute-force."""
        stats = self._index.query(query, visitor)
        n = self.buffered_rows
        if n == 0:
            return stats
        start = time.perf_counter()
        mask = np.ones(n, dtype=bool)
        buffer_table = Table(
            {dim: np.asarray(self._buffer[dim], dtype=np.int64) for dim in self._dims},
            compress=False,
        )
        for dim, (low, high) in query.ranges.items():
            if dim not in buffer_table:
                continue
            values = buffer_table.values(dim)
            mask &= (values >= low) & (values <= high)
        matched = int(np.count_nonzero(mask))
        if matched:
            visitor.visit(buffer_table, 0, n, mask)
        stats.points_scanned += n
        stats.points_matched += matched
        stats.scan_time += time.perf_counter() - start
        stats.total_time += time.perf_counter() - start
        return stats

    def size_bytes(self) -> int:
        return self._index.size_bytes() + 8 * self.buffered_rows * len(self._dims)
