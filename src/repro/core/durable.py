"""Durable mutable serving: WAL + snapshots around the delta buffer.

:class:`DurableDeltaFlood` wraps a
:class:`~repro.core.delta.DeltaBufferedFlood` (plain or sharded) and
implements the PR-5 :class:`~repro.core.protocol.MutableIndex` protocol,
so the whole engine/batcher/server stack serves it unchanged — but every
acknowledged insert now survives a crash:

- **Log before ack.** :meth:`insert` / :meth:`insert_many` append a
  framed record to the :class:`~repro.storage.wal.WriteAheadLog`
  *before* touching the in-memory buffer; the method only returns (and
  the wire ack only goes out) once the record is at least in the kernel
  (``fsync`` policy ``batch``/``never``) or on stable storage
  (``always``). A WAL failure raises a structured
  :class:`~repro.errors.DurabilityError` and leaves the buffer
  untouched — the client is never acked for a row the log may not hold.
- **Checkpoint after merge.** :meth:`commit_merge` swaps the prepared
  index in (cheap, runs through the serving write barrier), rotates the
  WAL to a fresh segment, and captures an immutable checkpoint state;
  :meth:`checkpoint` — run *off* the event loop by the serving layer —
  then writes the atomic snapshot and prunes every WAL segment the
  snapshot covers. Rows inserted mid-merge sit in the pre-rotation
  segment and are retained until a later checkpoint covers them.
- **Warm restart.** :meth:`open` loads the snapshot (clustered table +
  learned layout + counters), rebuilds the inner index from it — no
  dataset regeneration, no layout re-learning — and replays the WAL
  tail into the delta buffer. Replay filters on each record's absolute
  ``row_start`` against the snapshot's ``rows_merged_total``, so
  already-merged rows are skipped exactly, even when a merge boundary
  split a batch record in half. Recovery never writes new log records
  (beyond repairing a torn tail), which is what makes it idempotent:
  crash *during* recovery, recover again, same index.

Failure ordering note: the WAL append precedes the buffer apply, so the
only possible divergence is a logged-but-unacked row (append succeeded,
ack never sent because the process died first). Recovery resurrects such
rows — "every acknowledged insert survives" holds with recovered ⊇
acked, the only side clients can reason about.

Latency note: with ``group_commit=False`` (the default for library
use), WAL appends run synchronously inside the serving write barrier on
the event loop — including the per-insert ``fsync`` under the
``always`` policy — so every concurrent query stalls for the duration
of each disk sync; ``batch`` bounds the stall to a kernel-buffer flush.
With ``group_commit=True`` (``repro serve --group-commit``) appends go
through a :class:`~repro.storage.wal.GroupCommitLog` instead: the frame
is queued, :meth:`insert` returns a *ticket*
(:class:`concurrent.futures.Future`), and a flusher thread fsyncs once
per micro-batch off the loop, resolving tickets only after their batch
is durable. The serving layer awaits the ticket before acking, so the
log-before-ack contract is unchanged — what moves off the loop is the
wait, not the ordering. The one new divergence class this admits: a row
applied to the buffer whose ticket later fails (or never resolves
before a crash) was *visible to queries but never acked* — recovered ⊇
acked still holds, which is the only side clients can reason about.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.delta import DeltaBufferedFlood, PreparedMerge
from repro.core.layout import GridLayout
from repro.errors import DurabilityError, SchemaError
from repro.query.predicate import Query
from repro.query.stats import QueryStats
from repro.storage.snapshot import (
    has_snapshot,
    load_snapshot,
    write_snapshot,
)
from repro.storage.table import Table
from repro.storage.visitor import Visitor
from repro.storage.wal import (
    KIND_INSERT,
    KIND_INSERT_MANY,
    GroupCommitLog,
    StorageIO,
    WriteAheadLog,
    list_segments,
    scan_records,
)


class DurableDeltaFlood:
    """A delta-buffered Flood index whose inserts survive crashes.

    Parameters
    ----------
    layout:
        Grid layout for the inner index (ignored by :meth:`open`, which
        restores the layout from the snapshot).
    data_dir:
        Directory holding ``snapshot.bin`` + ``wal-*.log``; created by
        :meth:`build` if missing.
    fsync:
        WAL durability policy: ``always`` / ``batch`` / ``never`` (see
        :mod:`repro.storage.wal`).
    merge_threshold:
        Auto-merge (blocking, library use) once the buffer holds this
        many rows; ``None``/``0`` disables — the serving layer disables
        it and runs merges off-loop through its own threshold.
    group_commit:
        Route appends through a :class:`~repro.storage.wal.GroupCommitLog`:
        :meth:`insert` / :meth:`insert_many` then return a ticket
        (:class:`concurrent.futures.Future`) that resolves once the
        row's micro-batch is fsynced — the caller must gate acks on it.
        ``False`` (default) keeps the inline synchronous append.
    io:
        The :class:`~repro.storage.wal.StorageIO` seam; the fault-
        injection tests substitute a failing implementation.
    delta_kwargs:
        Passed through to :class:`~repro.core.delta.DeltaBufferedFlood`
        (``num_shards``, ``backend``, flood kwargs, ...).
    """

    name = "Flood-delta-durable"

    def __init__(
        self,
        layout: GridLayout,
        data_dir: str,
        fsync: str = "batch",
        merge_threshold: int | None = 4096,
        group_commit: bool = False,
        io: StorageIO | None = None,
        **delta_kwargs,
    ):
        self._delta = DeltaBufferedFlood(
            layout, merge_threshold=None, **delta_kwargs
        )
        self.data_dir = str(data_dir)
        self.fsync = fsync
        self.merge_threshold = merge_threshold
        self.group_commit = bool(group_commit)
        self._io = io or StorageIO()
        self._wal: WriteAheadLog | GroupCommitLog | None = None
        #: Rows ever appended to the WAL (the next record's row_start).
        self._rows_logged = 0
        #: Rows (cumulative) folded into the clustered table by merges.
        self._rows_merged_total = 0
        #: Immutable state captured at the last commit, awaiting its
        #: snapshot; written and cleared by :meth:`checkpoint`.
        self._checkpoint_state: dict | None = None
        self.checkpoints = 0
        self.last_checkpoint_seconds = 0.0
        self.recovered = False
        self.recovered_rows = 0
        self.recovery_clean = True
        self.recovery_reason: str | None = None

    def _make_wal(self) -> WriteAheadLog | GroupCommitLog:
        wal = WriteAheadLog(self.data_dir, fsync=self.fsync, io=self._io)
        return GroupCommitLog(wal) if self.group_commit else wal

    # ------------------------------------------------------------------ build
    @staticmethod
    def has_state(data_dir: str) -> bool:
        """Whether ``data_dir`` holds a recoverable snapshot."""
        return has_snapshot(data_dir)

    def build(self, table: Table) -> "DurableDeltaFlood":
        """Build fresh over ``table`` and persist the initial snapshot.

        Refuses a data dir that already holds a snapshot (use
        :meth:`open`) or WAL segments with logged rows — overwriting
        either would silently drop durable data.
        """
        if has_snapshot(self.data_dir):
            raise DurabilityError(
                f"{self.data_dir} already holds a snapshot; open() it "
                "instead of build()ing over it"
            )
        os.makedirs(self.data_dir, exist_ok=True)
        # Persist the data_dir entry itself: without fsyncing the parent
        # directory, a crash after build() returns can lose the whole
        # directory — snapshot, WAL, and the acks they back.
        parent = os.path.dirname(os.path.abspath(self.data_dir))
        self._io.fsync_dir(parent)
        for _, path in list_segments(self.data_dir):
            # Leftovers from a crash before the initial snapshot landed
            # hold no inserts (build is synchronous before serving) —
            # but verify that before deleting anything.
            with self._io.open(path, "rb") as handle:
                result = scan_records(handle.read())
            if any(record.rows for record in result.records):
                raise DurabilityError(
                    f"{self.data_dir} has WAL segments with logged rows "
                    "but no snapshot; refusing to build over possible "
                    "data loss (inspect or clear the directory first)"
                )
            self._io.remove(path)
        self._delta.build(table)
        self._wal = self._make_wal()
        # The initial snapshot: a crash at any later point recovers warm
        # (snapshot + WAL tail) instead of re-learning from the dataset.
        write_snapshot(
            self.data_dir,
            table=self._delta.table,
            layout=self._delta.layout,
            generation=self._delta.generation,
            merges=self._delta.merges,
            retrains=self._delta.retrains,
            rows_merged_total=0,
            io=self._io,
        )
        self.checkpoints += 1
        return self

    @classmethod
    def open(
        cls,
        data_dir: str,
        fsync: str = "batch",
        merge_threshold: int | None = 4096,
        group_commit: bool = False,
        io: StorageIO | None = None,
        **delta_kwargs,
    ) -> "DurableDeltaFlood":
        """Recover a warm index: snapshot + WAL-tail replay.

        Read-only with respect to durable state (modulo torn-tail
        repair), so recovery is idempotent — opening the same directory
        twice yields the same generation and row count.
        """
        snap = load_snapshot(data_dir, io=io)
        if snap is None:
            raise DurabilityError(
                f"{data_dir} holds no snapshot; build() a fresh index "
                "(or check the path)"
            )
        layout = GridLayout(snap.layout_order, snap.layout_columns)
        self = cls(
            layout,
            data_dir,
            fsync=fsync,
            merge_threshold=merge_threshold,
            group_commit=group_commit,
            io=io,
            **delta_kwargs,
        )
        inner = self._delta
        inner.build(Table(snap.columns, compress=snap.compressed))
        inner.generation = snap.generation
        inner.merges = snap.merges
        inner.retrains = snap.retrains
        self._rows_merged_total = snap.rows_merged_total
        self._wal = self._make_wal()
        self.recovery_clean = self._wal.recovery_clean
        self.recovery_reason = self._wal.recovery_reason
        base = snap.rows_merged_total
        replayed = 0
        for record in self._wal.recovered:
            if not record.rows or record.row_end <= base:
                continue  # truncate marker, or fully merged already
            skip = max(0, base - record.row_start)
            rows = (
                {dim: values[skip:] for dim, values in record.rows.items()}
                if skip
                else record.rows
            )
            if record.kind == KIND_INSERT and not skip:
                inner.insert(
                    {dim: values[0] for dim, values in rows.items()}
                )
            else:
                inner.insert_many(rows)
            replayed += record.row_end - record.row_start - skip
        self._rows_logged = max(self._wal.next_row, base)
        self.recovered = True
        self.recovered_rows = replayed
        return self

    # ------------------------------------------------------------ delegation
    @property
    def table(self) -> Table:
        return self._delta.table

    @property
    def index(self):
        """The current inner clustered index (replaced by every merge)."""
        return self._delta.index

    @property
    def layout(self) -> GridLayout:
        return self._delta.layout

    @property
    def generation(self) -> int:
        return self._delta.generation

    @property
    def merges(self) -> int:
        return self._delta.merges

    @property
    def retrains(self) -> int:
        return self._delta.retrains

    @property
    def last_merge_seconds(self) -> float:
        return self._delta.last_merge_seconds

    @property
    def buffered_rows(self) -> int:
        return self._delta.buffered_rows

    def query(
        self, query: Query, visitor: Visitor, enum_cache: dict | None = None
    ) -> QueryStats:
        return self._delta.query(query, visitor, enum_cache=enum_cache)

    def query_percell(self, query: Query, visitor: Visitor) -> QueryStats:
        return self._delta.query_percell(query, visitor)

    def size_bytes(self) -> int:
        return self._delta.size_bytes()

    # ----------------------------------------------------------------- insert
    def _require_wal(self) -> WriteAheadLog | GroupCommitLog:
        if self._wal is None:
            raise DurabilityError(
                f"{self.name} used before build()/open() attached its WAL"
            )
        return self._wal

    def _log(self, kind: int, cols: dict, row_start: int):
        """One record into the log. Inline mode appends (and syncs per
        policy) right here and returns ``None``; group-commit mode
        enqueues and returns the durability ticket — unless the ticket
        already failed (closed/fail-stopped log), which re-raises so the
        row is never applied, matching the inline failure contract."""
        wal = self._require_wal()
        if isinstance(wal, GroupCommitLog):
            ticket = wal.append_deferred(kind, cols, row_start)
            if ticket.done() and ticket.exception() is not None:
                raise ticket.exception()
            return ticket
        wal.append(kind, cols, row_start)
        return None

    def _coerce(self, rows: dict, batch: bool) -> dict:
        """Validate dims and coerce values to the table's column dtypes
        (the same coercion the buffer applies, so the logged bytes equal
        what a replay will re-insert)."""
        inner = self._delta
        if not inner._dims:
            raise DurabilityError(f"{self.name} used before build()/open()")
        if set(rows) != set(inner._dims):
            raise SchemaError(
                f"row dims {sorted(rows)} do not match table dims "
                f"{sorted(inner._dims)}"
            )
        out = {}
        for dim in inner._dims:
            values = np.atleast_1d(np.asarray(rows[dim]))
            out[dim] = values.astype(inner._dtypes[dim])
        if batch and len({len(v) for v in out.values()}) != 1:
            raise SchemaError("batch columns disagree on length")
        return out

    def insert(self, row: dict):
        """WAL-log one row, then buffer it. Inline mode raises
        :class:`~repro.errors.DurabilityError` (row NOT applied, NOT to
        be acked) if the log write fails and returns ``None`` once the
        row is durable per policy; group-commit mode returns the
        durability ticket — the caller must await it before acking."""
        cols = self._coerce(row, batch=False)
        ticket = self._log(KIND_INSERT, cols, self._rows_logged)
        self._rows_logged += 1
        self._delta.insert(row)
        self._maybe_auto_merge()
        return ticket

    def insert_many(self, rows: dict):
        """WAL-log a column-oriented batch, then buffer it; same return
        contract as :meth:`insert`."""
        cols = self._coerce(rows, batch=True)
        nrows = len(next(iter(cols.values())))
        ticket = self._log(KIND_INSERT_MANY, cols, self._rows_logged)
        self._rows_logged += nrows
        self._delta.insert_many(rows)
        self._maybe_auto_merge()
        return ticket

    def _maybe_auto_merge(self) -> None:
        if (
            self.merge_threshold is not None
            and self.merge_threshold > 0
            and self.buffered_rows >= self.merge_threshold
        ):
            self.merge()

    # ------------------------------------------------------------------ merge
    def prepare_merge(self) -> PreparedMerge | None:
        return self._delta.prepare_merge()

    def prepare_relayout(self, queries, cost_model=None, seed: int = 0):
        return self._delta.prepare_relayout(
            queries, cost_model=cost_model, seed=seed
        )

    def commit_merge(self, prepared: PreparedMerge | None):
        """Swap the prepared index in, rotate the WAL, and capture the
        checkpoint state; returns the old inner index (for backend
        retirement), exactly like the plain delta index.

        Kept cheap deliberately: this runs through the serving write
        barrier (on the event loop). The heavy half — snapshot write +
        segment pruning — is :meth:`checkpoint`, which the serving layer
        runs on an executor thread right after.
        """
        old = self._delta.commit_merge(prepared)
        if prepared is not None:
            self._rows_merged_total += prepared.rows_merged
            self._require_wal().rotate()
            # Capture *immutable* state now (the table never mutates, a
            # layout is frozen): checkpoint() can serialize it off-loop
            # while inserts keep landing in the new WAL segment.
            self._checkpoint_state = {
                "table": self._delta.table,
                "layout": self._delta.layout,
                "generation": self._delta.generation,
                "merges": self._delta.merges,
                "retrains": self._delta.retrains,
                "rows_merged_total": self._rows_merged_total,
            }
        return old

    def checkpoint(self) -> bool:
        """Write the pending snapshot and prune covered WAL segments.

        Heavy (serializes the whole clustered table, fsyncs): the
        serving layer runs it off the event loop after each commit; the
        library-use :meth:`merge` calls it inline. Returns False when no
        commit is pending. On failure the pending state is kept, the
        previous snapshot stays valid, and the WAL still covers every
        row — recovery replays the merged rows back into the buffer, so
        nothing is lost, just not yet compacted.
        """
        state = self._checkpoint_state
        if state is None:
            return False
        start = time.perf_counter()
        write_snapshot(
            self.data_dir,
            table=state["table"],
            layout=state["layout"],
            generation=state["generation"],
            merges=state["merges"],
            retrains=state["retrains"],
            rows_merged_total=state["rows_merged_total"],
            io=self._io,
        )
        self._checkpoint_state = None
        self.checkpoints += 1
        self.last_checkpoint_seconds = time.perf_counter() - start
        self._require_wal().prune(state["rows_merged_total"])
        return True

    def merge(self) -> None:
        """Blocking merge + checkpoint (the library-use path)."""
        self.commit_merge(self.prepare_merge())
        self.checkpoint()

    # ------------------------------------------------------------------ stats
    def durability_stats(self) -> dict:
        """The ``durability`` block of the serving ``stats`` op."""
        wal = self._wal
        group = (
            wal.group_commit_stats()
            if isinstance(wal, GroupCommitLog)
            else None
        )
        return {
            "data_dir": self.data_dir,
            "fsync": self.fsync,
            "group_commit": group,
            "wal_segments": wal.segment_count if wal is not None else 0,
            "wal_bytes": wal.size_bytes() if wal is not None else 0,
            "wal_records": wal.records_appended if wal is not None else 0,
            "rows_logged": self._rows_logged,
            "rows_merged_total": self._rows_merged_total,
            "checkpoints": self.checkpoints,
            "last_checkpoint_seconds": self.last_checkpoint_seconds,
            "checkpoint_pending": self._checkpoint_state is not None,
            "recovered": self.recovered,
            "recovered_rows": self.recovered_rows,
            "recovery_clean": self.recovery_clean,
            "recovery_reason": self.recovery_reason,
        }

    # --------------------------------------------------------------- teardown
    def close(self) -> None:
        """Close the WAL without checkpointing (crash-equivalent state on
        disk, modulo the final flush); used by recovery tests that need
        the un-compacted directory preserved."""
        if self._wal is not None:
            self._wal.close()

    def shutdown(self) -> None:
        """Best-effort final checkpoint, then retire WAL + scan backend."""
        try:
            self.checkpoint()
        except DurabilityError:
            pass  # recovery still replays the WAL; nothing is lost
        if self._wal is not None:
            self._wal.close()
        self._delta.shutdown()
