"""Layout optimization (paper Section 4.2 / Appendix B, Algorithm 1).

``find_optimal_layout`` samples the dataset and the query workload,
flattens both through per-dimension CDF models, then — for each choice of
sort dimension — orders the remaining dimensions by average selectivity and
runs a gradient-descent search over the column counts, scoring candidates
with the cost model on *estimated* statistics. No candidate layout is ever
built, no data is sorted, and no query is executed during the search, which
is what makes learning fast enough to re-run on workload shifts
(Figure 10).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.cost import CostModel, QueryFeatures
from repro.core.flatten import Flattener
from repro.core.layout import GridLayout
from repro.errors import BuildError


@dataclass
class OptimizationResult:
    """The chosen layout plus bookkeeping for the creation-time benches."""

    layout: GridLayout
    predicted_cost: float
    learn_seconds: float
    candidates: list[tuple[GridLayout, float]] = field(default_factory=list)


def _avg_selectivities(sample_matrix, dims, queries) -> dict[str, float]:
    """Average per-dimension selectivity of the workload on the sample.

    Unfiltered queries contribute selectivity 1 for that dimension, so
    rarely filtered dimensions rank last (and tend to get few columns).
    """
    result = {}
    for k, dim in enumerate(dims):
        values = sample_matrix[:, k]
        total = 0.0
        for query in queries:
            if query.filters(dim):
                low, high = query.bounds(dim)
                total += float(((values >= low) & (values <= high)).mean())
            else:
                total += 1.0
        result[dim] = total / max(len(queries), 1)
    return result


class _SampleEvaluator:
    """Estimates QueryFeatures for candidate layouts from a flattened sample.

    Per dimension we precompute the CDF of every sample point and of every
    query bound; a candidate's statistics then reduce to vectorized
    comparisons (no layout build, no query execution).
    """

    def __init__(self, table, sample_rows, queries, dims, flatten):
        self.n_total = table.num_rows
        self.n_sample = len(sample_rows)
        self.scale = self.n_total / max(self.n_sample, 1)
        self.dims = list(dims)
        self.queries = list(queries)
        self._flattener = Flattener(
            table, self.dims, kind=flatten, sample_rows=sample_rows
        )
        # Per-dim sample CDFs and raw values (values needed for the sort dim).
        self._sample_cdf = {}
        self._sample_values = {}
        for dim in self.dims:
            values = table.values(dim)[sample_rows]
            self._sample_values[dim] = values
            self._sample_cdf[dim] = self._flattener.cdf(dim, values)
        # Per-query, per-dim CDF bounds.
        self._query_cdf_bounds = []
        for query in self.queries:
            bounds = {}
            for dim in self.dims:
                if query.filters(dim):
                    low, high = query.bounds(dim)
                    cdf = self._flattener.cdf(
                        dim, np.array([low, high], dtype=np.int64)
                    )
                    bounds[dim] = (float(cdf[0]), float(cdf[1]))
            self._query_cdf_bounds.append(bounds)

    @property
    def flattener(self) -> Flattener:
        return self._flattener

    def features(self, order, columns) -> list[QueryFeatures]:
        """Estimated QueryFeatures for every sample query under a layout."""
        grid_dims = order[:-1]
        sort_dim = order[-1]
        # math.prod, not np.prod: int64 silently wraps for large products.
        total_cells = math.prod(columns) if columns else 1
        out = []
        for query, cdf_bounds in zip(self.queries, self._query_cdf_bounds):
            nc = 1
            mask = np.ones(self.n_sample, dtype=bool)
            for dim, c in zip(grid_dims, columns):
                if dim in cdf_bounds:
                    lo_cdf, hi_cdf = cdf_bounds[dim]
                    first = min(int(lo_cdf * c), c - 1)
                    last = min(int(hi_cdf * c), c - 1)
                    nc *= last - first + 1
                    point_cdf = self._sample_cdf[dim]
                    mask &= point_cdf >= first / c
                    if last == c - 1:
                        # The real index clips column assignments into the top
                        # column, so a sample point with model CDF == 1.0 still
                        # lands in column c-1; a strict upper comparison would
                        # drop it and underestimate Ns.
                        mask &= point_cdf <= (last + 1) / c
                    else:
                        mask &= point_cdf < (last + 1) / c
                else:
                    nc *= c
            sort_filtered = query.filters(sort_dim)
            if sort_filtered:
                low, high = query.bounds(sort_dim)
                values = self._sample_values[sort_dim]
                mask &= (values >= low) & (values <= high)
            ns = float(np.count_nonzero(mask)) * self.scale
            out.append(
                QueryFeatures(
                    total_cells=total_cells,
                    nc=nc,
                    ns=ns,
                    dims_filtered=len(query),
                    sort_filtered=sort_filtered,
                    table_rows=self.n_total,
                )
            )
        return out


def _descend(
    evaluator: _SampleEvaluator,
    cost_model: CostModel,
    order,
    init_columns,
    max_cells: int,
    max_iters: int = 12,
):
    """Projected finite-difference gradient descent in log2-column space."""

    def project(x):
        x = np.clip(x, 0.0, 20.0)
        total = x.sum()
        cap = np.log2(max_cells)
        if total > cap:
            x = x * (cap / total)
        return x

    def cost_at(x):
        columns = tuple(max(1, int(round(2**v))) for v in x)
        return cost_model.predict_batch(evaluator.features(order, columns)), columns

    x = project(np.log2(np.maximum(init_columns, 1)).astype(np.float64))
    best_cost, best_columns = cost_at(x)
    step = 1.0
    h = 0.5
    for _ in range(max_iters):
        grad = np.zeros_like(x)
        for j in range(x.size):
            plus = x.copy()
            plus[j] += h
            minus = x.copy()
            minus[j] -= h
            grad[j] = (cost_at(project(plus))[0] - cost_at(project(minus))[0]) / (2 * h)
        norm = float(np.linalg.norm(grad))
        if norm == 0.0:
            break
        candidate = project(x - step * grad / norm)
        cost, columns = cost_at(candidate)
        if cost < best_cost:
            best_cost, best_columns = cost, columns
            x = candidate
            step = min(step * 1.25, 2.0)
        else:
            step *= 0.5
            if step < 0.05:
                break
    # Polish: per-dimension halve/double/drop moves catch improvements the
    # rounded gradient steps miss (e.g. collapsing a barely-useful grid
    # dimension to a single column).
    best_columns = list(best_columns)
    for _ in range(3):
        improved = False
        for j in range(len(best_columns)):
            current = best_columns[j]
            for candidate_cols in {1, max(1, current // 2), current * 2}:
                if candidate_cols == current:
                    continue
                trial = list(best_columns)
                trial[j] = candidate_cols
                # math.prod, not np.prod: the int64 wrap could let an enormous
                # trial layout slip under the cell cap.
                if math.prod(trial) > max_cells:
                    continue
                cost = cost_model.predict_batch(
                    evaluator.features(order, tuple(trial))
                )
                if cost < best_cost:
                    best_cost = cost
                    best_columns = trial
                    improved = True
        if not improved:
            break
    return tuple(best_columns), best_cost


def _init_columns(grid_dims, queries, target_cells: int) -> tuple[int, ...]:
    """Starting column counts: log-share of the target cell count allocated
    in proportion to how often each dimension is filtered."""
    if not grid_dims:
        return ()
    freq = {
        d: sum(1 for q in queries if q.filters(d)) / max(len(queries), 1)
        for d in grid_dims
    }
    weights = np.array([freq[d] + 0.05 for d in grid_dims])
    shares = weights / weights.sum() * np.log(max(target_cells, 2))
    return tuple(max(1, int(round(np.exp(s)))) for s in shares)


def heuristic_layout(
    table,
    queries,
    target_cells: int = 1024,
    sort_dim: str | None = None,
    dims=None,
    sample_size: int = 5000,
    seed: int = 0,
) -> GridLayout:
    """A workload-aware but un-learned layout (Figure 11's middle rungs).

    The most selective dimension becomes the sort dimension; grid columns
    are allocated in proportion to how often each dimension is filtered.
    """
    dims = list(table.dims if dims is None else dims)
    if len(dims) == 0:
        raise BuildError("no dimensions to lay out")
    if table.num_rows == 0:
        raise BuildError("cannot derive a layout from an empty table")
    rng = np.random.default_rng(seed)
    rows = np.sort(
        rng.choice(table.num_rows, size=min(sample_size, table.num_rows), replace=False)
    )
    matrix = np.stack([table.values(d)[rows] for d in dims], axis=1)
    selectivity = _avg_selectivities(matrix, dims, queries)
    if sort_dim is None:
        sort_dim = min(dims, key=lambda d: selectivity[d])
    grid_dims = sorted(
        (d for d in dims if d != sort_dim), key=lambda d: selectivity[d]
    )
    columns = _init_columns(grid_dims, queries, target_cells)
    return GridLayout(tuple(grid_dims) + (sort_dim,), columns)


def find_optimal_layout(
    table,
    queries,
    cost_model: CostModel,
    data_sample_size: int = 2000,
    query_sample_size: int = 50,
    max_cells: int = 16384,
    flatten: str = "rmi",
    seed: int = 0,
    dims=None,
    max_iters: int = 12,
) -> OptimizationResult:
    """Algorithm 1: sample, flatten, try each sort dimension, descend.

    Parameters mirror the paper's sampling knobs (Figures 15 and 16): the
    data and query samples bound learning time without hurting quality.
    """
    start = time.perf_counter()
    rng = np.random.default_rng(seed)
    dims = list(table.dims if dims is None else dims)
    if not dims:
        raise BuildError("no dimensions to lay out")
    if not queries:
        raise BuildError("cannot optimize a layout for an empty workload")

    n = table.num_rows
    sample_rows = (
        np.sort(rng.choice(n, size=min(data_sample_size, n), replace=False))
        if n
        else np.empty(0, dtype=np.int64)
    )
    queries = list(queries)
    if len(queries) > query_sample_size:
        picked = rng.choice(len(queries), size=query_sample_size, replace=False)
        queries = [queries[i] for i in picked]

    evaluator = _SampleEvaluator(table, sample_rows, queries, dims, flatten)
    sample_matrix = np.stack([evaluator._sample_values[d] for d in dims], axis=1)
    selectivity = _avg_selectivities(sample_matrix, dims, queries)

    best = None
    candidates = []
    for sort_dim in dims:
        grid_dims = sorted(
            (d for d in dims if d != sort_dim), key=lambda d: selectivity[d]
        )
        order = tuple(grid_dims) + (sort_dim,)
        if grid_dims:
            init = _init_columns(grid_dims, queries, min(1024, max_cells))
            columns, cost = _descend(
                evaluator, cost_model, order, np.array(init), max_cells, max_iters
            )
        else:
            columns, cost = (), cost_model.predict_batch(
                evaluator.features(order, ())
            )
        layout = GridLayout(order, columns)
        candidates.append((layout, cost))
        if best is None or cost < best[1]:
            best = (layout, cost)

    layout, cost = best
    return OptimizationResult(
        layout=layout,
        predicted_cost=cost,
        learn_seconds=time.perf_counter() - start,
        candidates=candidates,
    )
