"""Intra-query parallelism: the clustered table split into storage shards.

:class:`BatchQueryEngine` parallelizes *across* queries; this module
parallelizes *within* one. A :class:`ShardedFloodIndex` partitions the
clustered table into K storage-contiguous shards along the cell order —
each shard owns a contiguous run of ``cell_starts``, so shard boundaries
never cut a cell — and fans a single query's scan runs out across a
process-wide worker pool. Projection and refinement stay single-threaded
(they are a few vectorized passes, microseconds at any plan size); the
scan, which dominates large queries (paper Table 2), is what shards.

*Where* the per-shard pieces execute is pluggable
(:mod:`repro.core.backends`): the default :class:`ThreadBackend` uses the
process-wide thread pool below (numpy kernels release the GIL), while
:class:`ProcessBackend` runs shards on worker processes attached
zero-copy to the table's shared-memory segments — real cores even for
CPU-bound, GIL-holding visitor work. Mergeable visitors
(``fresh``/``merge``) ship compact partial aggregates back and merge in
shard order; any other visitor falls back to
:class:`~repro.storage.visitor.RecordingVisitor` record-and-replay. The
merge (or replay) runs on the calling thread in shard order either way,
so results are deterministic regardless of worker scheduling.

Results are bit-identical to :meth:`FloodIndex.query` and the seed's
:meth:`FloodIndex.query_percell` under every backend: splitting a
coalesced run at a shard boundary changes neither the rows scanned nor
the masks computed.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core.backends import ScanBackend, SerialBackend, resolve_backend
from repro.core.index import FloodIndex, QueryPlan
from repro.errors import BuildError
from repro.query.predicate import Query
from repro.query.stats import QueryStats
from repro.storage.scan import split_runs
from repro.storage.table import Table
from repro.storage.visitor import Visitor

#: Below this many planned points a query is scanned serially: pool
#: dispatch costs more than it buys on small scans (identical results
#: either way; this only picks the execution strategy).
MIN_PARALLEL_POINTS = 1 << 15

_POOL: ThreadPoolExecutor | None = None


def default_num_shards() -> int:
    """One shard per core (the paper's evaluation machines are multi-core)."""
    return max(1, os.cpu_count() or 1)


def get_scan_pool() -> ThreadPoolExecutor:
    """The process-wide shard-scan pool, created lazily (one per core).

    Shared by every :class:`ShardedFloodIndex` in the process so concurrent
    queries (e.g. engine workers over a sharded index) compete for one
    bounded pool instead of oversubscribing the machine.
    """
    global _POOL
    if _POOL is None:
        _POOL = ThreadPoolExecutor(
            max_workers=default_num_shards(), thread_name_prefix="repro-shard"
        )
    return _POOL


def set_scan_pool(pool: ThreadPoolExecutor | None) -> ThreadPoolExecutor | None:
    """Swap the process-wide scan pool (pluggable executor); returns the old.

    Pass ``None`` to reset to lazy re-creation. The caller owns shutdown of
    the returned pool.
    """
    global _POOL
    old, _POOL = _POOL, pool
    return old


class ShardedFloodIndex(FloodIndex):
    """A Flood index whose single-query scans fan out across cores.

    Drop-in replacement for :class:`FloodIndex` (same build, plan, and
    refinement; :class:`~repro.core.engine.BatchQueryEngine` accepts it
    directly) that overrides only the scan stage: a query's coalesced runs
    are split at shard boundaries and scanned concurrently.

    Parameters
    ----------
    layout:
        The grid layout, as for :class:`FloodIndex`.
    num_shards:
        Storage shards to partition into (default: one per core). The
        effective count can be lower when the table has fewer (or very
        large) cells, since boundaries snap to cell starts.
    min_parallel_points:
        Plans scanning fewer points than this run serially (0 forces the
        parallel path, used by the identity tests).
    executor:
        Worker pool for the (default) thread backend; defaults to the
        process-wide pool from :func:`get_scan_pool`. Ignored by other
        backends.
    backend:
        Scan-backend spec: ``'serial'`` / ``'thread'`` / ``'process'``
        or a :class:`~repro.core.backends.ScanBackend` instance.
        ``None`` (default) means ``'thread'`` — the pre-backend
        behavior. String specs resolve lazily on first parallel scan
        (the process backend needs the built table); the resolved
        instance is reachable as :attr:`scan_backend` and the caller
        owns its :meth:`~repro.core.backends.ScanBackend.shutdown`.
    **kwargs:
        ``flatten`` / ``refinement`` / ``delta``, as for
        :class:`FloodIndex`.
    """

    name = "Flood-sharded"

    def __init__(
        self,
        layout,
        num_shards: int | None = None,
        min_parallel_points: int = MIN_PARALLEL_POINTS,
        executor: ThreadPoolExecutor | None = None,
        backend: str | ScanBackend | None = None,
        **kwargs,
    ):
        super().__init__(layout, **kwargs)
        if num_shards is not None and int(num_shards) < 1:
            raise BuildError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = int(num_shards) if num_shards else default_num_shards()
        self.min_parallel_points = int(min_parallel_points)
        self.executor = executor
        self._backend_spec = "thread" if backend is None else backend
        self._backend: ScanBackend | None = (
            backend if isinstance(backend, ScanBackend) else None
        )
        self._backend_lock = threading.Lock()

    # ------------------------------------------------------------------ build
    def _build(self, table: Table) -> None:
        super()._build(table)
        self._compute_shard_bounds()

    @classmethod
    def wrap(
        cls,
        index: FloodIndex,
        num_shards: int | None = None,
        min_parallel_points: int = MIN_PARALLEL_POINTS,
        executor: ThreadPoolExecutor | None = None,
        backend: str | ScanBackend | None = None,
    ) -> "ShardedFloodIndex":
        """Shard an already-built :class:`FloodIndex` without rebuilding.

        The returned index *shares* the source's clustered table and models
        (no copy); only the shard boundaries are new. The source's fused
        scan-kernel spec carries over (swap afterwards with
        :meth:`FloodIndex.use_kernel`).
        """
        index.table  # raises BuildError when not built
        sharded = cls(
            index.layout,
            num_shards=num_shards,
            min_parallel_points=min_parallel_points,
            executor=executor,
            backend=backend,
            flatten=index.flatten,
            refinement=index.refinement,
            delta=index.delta,
            kernel=index.kernel_spec,
        )
        for attr in FloodIndex._BUILT_STATE_ATTRS:
            if hasattr(index, attr):
                setattr(sharded, attr, getattr(index, attr))
        sharded.build_seconds = index.build_seconds
        sharded._compute_shard_bounds()
        return sharded

    def _compute_shard_bounds(self) -> None:
        """Row offsets delimiting the shards, snapped to cell starts.

        Targets split the *rows* evenly (not the cells — skewed data packs
        most rows into few cells, and row balance is what balances scan
        work), then each target snaps up to the next cell start so a shard
        always owns whole cells. Duplicate or degenerate boundaries
        collapse, so the effective shard count may be below ``num_shards``.
        """
        n = self._table.num_rows
        cell_starts = self._cell_starts
        k = min(self.num_shards, max(1, n))
        targets = (np.arange(1, k) * n) // k
        snapped = cell_starts[np.searchsorted(cell_starts, targets, side="left")]
        inner = np.unique(snapped)
        inner = inner[(inner > 0) & (inner < n)]
        self._shard_bounds = np.concatenate(
            (np.zeros(1, dtype=np.int64), inner, np.full(1, n, dtype=np.int64))
        )

    @property
    def shard_bounds(self) -> np.ndarray:
        """Row offsets ``[0, b_1, ..., n]``; shard k owns rows [b_k, b_k+1)."""
        if self._table is None:
            raise BuildError(f"{self.name} index used before build()")
        return self._shard_bounds

    @property
    def effective_shards(self) -> int:
        """Shard count after snapping to cell boundaries (<= ``num_shards``)."""
        return self.shard_bounds.size - 1

    # --------------------------------------------------------------- backend
    @property
    def scan_backend(self) -> ScanBackend:
        """The resolved backend executing this index's shard scans.

        Resolves a string spec lazily (``'process'`` needs the built
        table to place in shared memory); repeated access returns the
        same instance. The caller (CLI, benchmark, server) owns
        :meth:`~repro.core.backends.ScanBackend.shutdown` of process
        backends — per-query code never tears pools down.
        """
        if self._backend is None:
            # Locked: concurrent engine workers resolving 'process' would
            # otherwise each copy the table into shared memory and leak
            # every losing copy's segments until the atexit sweep.
            with self._backend_lock:
                if self._backend is None:
                    table = self.table if self._backend_spec == "process" else None
                    self._backend = resolve_backend(
                        self._backend_spec, table=table, executor=self.executor
                    )
        return self._backend

    def use_backend(self, backend: str | ScanBackend) -> ScanBackend:
        """Swap the scan backend; returns the *previous* resolved backend
        (or ``None``), whose shutdown the caller owns."""
        old = self._backend
        self._backend_spec = backend
        self._backend = backend if isinstance(backend, ScanBackend) else None
        if self._backend is None:
            self.scan_backend  # resolve eagerly so config errors fail here
        return old

    # ------------------------------------------------------------------- scan
    def execute_plan(
        self,
        plan: QueryPlan,
        query: Query,
        visitor: Visitor,
        stats: QueryStats,
        runs: list[tuple[int, int, int]] | None = None,
    ) -> None:
        """Scan a (refined) plan with per-shard fan-out on the backend.

        Small plans (fewer than ``min_parallel_points`` planned points),
        single-shard tables, and the serial backend fall through to the
        serial kernel; otherwise the runs are split at shard boundaries
        and handed to :attr:`scan_backend`, which merges partial
        aggregates (mergeable visitors) or replays recorded visits in
        shard order.
        """
        if runs is None:
            runs = plan.coalesced_runs()
        if not runs:
            return
        bounds = self._shard_bounds
        planned_points = sum(stop - start for start, stop, _ in runs)
        if bounds.size - 1 <= 1 or planned_points < self.min_parallel_points:
            super().execute_plan(plan, query, visitor, stats, runs=runs)
            return
        backend = self.scan_backend
        if isinstance(backend, SerialBackend):
            super().execute_plan(plan, query, visitor, stats, runs=runs)
            return
        per_shard = [rs for rs in split_runs(runs, bounds) if rs]
        if len(per_shard) <= 1:
            super().execute_plan(plan, query, visitor, stats, runs=runs)
            return
        backend.scan(self, plan, query, visitor, stats, per_shard)
