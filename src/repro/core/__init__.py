"""Flood: the learned multi-dimensional index (the paper's contribution).

- :mod:`repro.core.layout` -- the grid layout: dimension ordering (last is
  the sort dimension) and per-grid-dimension column counts (Section 3.1).
- :mod:`repro.core.flatten` -- per-attribute CDF flattening so each column
  holds equal mass (Section 5.1).
- :mod:`repro.core.index` -- the Flood index: projection, per-cell PLM
  refinement, and scan (Sections 3.2 and 5.2).
- :mod:`repro.core.protocol` -- the queryable-index protocol the engine
  and serving stack program against (plain, sharded, or delta-buffered).
- :mod:`repro.core.engine` -- throughput-mode batch execution of query
  workloads (vectorized plans, shared enumeration cache, worker pool).
- :mod:`repro.core.shard` -- intra-query parallelism: the clustered table
  split into storage-contiguous shards so one query's scan fans out
  across cores.
- :mod:`repro.core.backends` -- pluggable scan backends executing those
  shard scans: serial, thread pool, or a zero-copy process pool for
  CPU-bound visitors.
- :mod:`repro.core.cost` -- the cost model Time = wp*Nc + wr*Nc + ws*Ns with
  learned weights (Section 4.1).
- :mod:`repro.core.calibration` -- weight-model training from random
  layouts (Section 4.1.1).
- :mod:`repro.core.optimizer` -- layout optimization over samples
  (Section 4.2 / Algorithm 1).

Extensions the paper sketches (Sections 6 and 8) are implemented too:
:mod:`repro.core.knn` (nearest-neighbor search over the grid),
:mod:`repro.core.delta` (inserts via a delta buffer),
:mod:`repro.core.durable` (the delta buffer made crash-safe: WAL +
snapshots + warm restart), and :mod:`repro.core.monitor` (workload-shift
detection + auto-retraining).
"""

from repro.core.backends import (
    ProcessBackend,
    ScanBackend,
    SerialBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.core.calibration import calibrate, generate_training_examples
from repro.core.cost import AnalyticCostModel, CostModel, LearnedCostModel, QueryFeatures
from repro.core.delta import DeltaBufferedFlood
from repro.core.durable import DurableDeltaFlood
from repro.core.engine import BatchQueryEngine, BatchResult
from repro.core.flatten import Flattener
from repro.core.index import FloodIndex, QueryPlan
from repro.core.knn import KNNSearcher, knn
from repro.core.layout import GridLayout
from repro.core.monitor import AdaptiveFlood, WorkloadMonitor
from repro.core.optimizer import find_optimal_layout, heuristic_layout
from repro.core.protocol import (
    MutableIndex,
    QueryableIndex,
    require_queryable,
    supports_insert,
)
from repro.core.shard import ShardedFloodIndex

__all__ = [
    "ShardedFloodIndex",
    "QueryableIndex",
    "MutableIndex",
    "require_queryable",
    "supports_insert",
    "ScanBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "resolve_backend",
    "DeltaBufferedFlood",
    "DurableDeltaFlood",
    "KNNSearcher",
    "knn",
    "AdaptiveFlood",
    "WorkloadMonitor",
    "calibrate",
    "generate_training_examples",
    "AnalyticCostModel",
    "CostModel",
    "LearnedCostModel",
    "QueryFeatures",
    "BatchQueryEngine",
    "BatchResult",
    "Flattener",
    "FloodIndex",
    "GridLayout",
    "QueryPlan",
    "find_optimal_layout",
    "heuristic_layout",
]
