"""The Flood cost model (paper Section 4.1).

Query time is modeled as ``Time = wp*Nc + wr*Nc + ws*Ns`` where ``Nc`` is
the number of cells intersecting the query rectangle, ``Ns`` the number of
scanned points, and the weights are *not* constants: they are predicted
from layout/query statistics by regression models (random forests), because
their dependence on features like scan run length is non-linear (Figure 5).

Two implementations:

- :class:`LearnedCostModel` -- the paper's: three random forests (one per
  weight) trained by :mod:`repro.core.calibration`.
- :class:`AnalyticCostModel` -- the paper's strawman: fine-tuned constant
  weights (reported to be ~9x less accurate; see
  ``benchmarks/bench_fig5_weights.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.ml.forest import RandomForestRegressor


@dataclass
class QueryFeatures:
    """Statistics describing one query against one layout.

    Computable both from an instrumented run (calibration) and from a data
    sample plus layout parameters (optimization), which is what lets the
    optimizer avoid building candidate layouts (Section 4.2).
    """

    total_cells: int
    nc: int
    ns: float
    dims_filtered: int
    sort_filtered: bool
    table_rows: int

    @property
    def avg_visited_per_cell(self) -> float:
        return self.ns / max(self.nc, 1)

    @property
    def avg_cell_size(self) -> float:
        return self.table_rows / max(self.total_cells, 1)

    @property
    def avg_run_length(self) -> float:
        """Expected contiguous scan run per cell — a locality proxy that
        drives the non-linearity of ws (Figure 5)."""
        return self.avg_visited_per_cell

    def to_vector(self) -> np.ndarray:
        return np.array(
            [
                np.log1p(self.total_cells),
                np.log1p(self.nc),
                np.log1p(self.ns),
                float(self.dims_filtered),
                float(self.sort_filtered),
                np.log1p(self.avg_visited_per_cell),
                np.log1p(self.avg_cell_size),
            ]
        )

    #: Feature names aligned with :meth:`to_vector`.
    FEATURE_NAMES = (
        "log_total_cells",
        "log_nc",
        "log_ns",
        "dims_filtered",
        "sort_filtered",
        "log_avg_visited_per_cell",
        "log_avg_cell_size",
    )


class CostModel(ABC):
    """Predicts per-phase weights and total query time for a layout."""

    @abstractmethod
    def predict_weights(self, features: QueryFeatures) -> tuple[float, float, float]:
        """(wp, wr, ws) in seconds per cell / cell / point."""

    def predict_time(self, features: QueryFeatures) -> float:
        """Eq. 1: wp*Nc + wr*Nc (if the sort dim is filtered) + ws*Ns."""
        wp, wr, ws = self.predict_weights(features)
        refine = features.nc * wr if features.sort_filtered else 0.0
        return wp * features.nc + refine + ws * features.ns

    def predict_times(self, features_list) -> np.ndarray:
        """Predicted time per query; subclasses may batch this."""
        return np.array([self.predict_time(f) for f in features_list])

    def predict_batch(self, features_list) -> float:
        """Average predicted time over a workload sample."""
        if not features_list:
            return 0.0
        return float(self.predict_times(features_list).mean())


class AnalyticCostModel(CostModel):
    """Constant-weight strawman (paper Section 4.1.2).

    Defaults are medians measured on this repository's Python/numpy
    substrate (see ``repro.core.calibration``): cell processing is dominated
    by interpreter overhead (~microseconds/cell), scans by vectorized numpy
    (~0.1 microsecond/point at typical per-cell run lengths).
    """

    def __init__(self, wp: float = 8e-6, wr: float = 1.5e-5, ws: float = 1e-7):
        self.wp = float(wp)
        self.wr = float(wr)
        self.ws = float(ws)

    def predict_weights(self, features: QueryFeatures) -> tuple[float, float, float]:
        return self.wp, self.wr, self.ws


class LearnedCostModel(CostModel):
    """Random-forest weight models (paper Section 4.1.1).

    Weights span a relatively narrow range, so the forests regress the
    weights themselves rather than total query time — a single time model
    "would optimize for accuracy of slow queries at the detriment of fast
    queries" (Section 4.1.1).
    """

    def __init__(
        self,
        wp_model: RandomForestRegressor,
        wr_model: RandomForestRegressor,
        ws_model: RandomForestRegressor,
        weight_floor: float = 1e-10,
        log_space: bool = False,
    ):
        self._wp = wp_model
        self._wr = wr_model
        self._ws = ws_model
        self.weight_floor = float(weight_floor)
        #: When True the forests were trained on log-weights. In this
        #: Python substrate the weights span ~50x (numpy call overhead
        #: amortizes over scan run length), so log-space targets keep short
        #: and long runs equally weighted in the variance criterion.
        self.log_space = bool(log_space)

    def predict_weights(self, features: QueryFeatures) -> tuple[float, float, float]:
        vector = features.to_vector()[None, :]
        raw = (
            float(self._wp.predict(vector)[0]),
            float(self._wr.predict(vector)[0]),
            float(self._ws.predict(vector)[0]),
        )
        if self.log_space:
            raw = tuple(np.exp(r) for r in raw)
        return tuple(max(r, self.weight_floor) for r in raw)

    def predict_times(self, features_list) -> np.ndarray:
        """Batched Eq. 1: one forest pass per weight for the whole sample.

        The optimizer calls this hundreds of times per layout search; the
        per-row path would dominate learning time.
        """
        if not features_list:
            return np.empty(0)
        matrix = np.stack([f.to_vector() for f in features_list])
        wp = self._wp.predict(matrix)
        wr = self._wr.predict(matrix)
        ws = self._ws.predict(matrix)
        if self.log_space:
            wp, wr, ws = np.exp(wp), np.exp(wr), np.exp(ws)
        wp = np.maximum(wp, self.weight_floor)
        wr = np.maximum(wr, self.weight_floor)
        ws = np.maximum(ws, self.weight_floor)
        nc = np.array([f.nc for f in features_list], dtype=np.float64)
        ns = np.array([f.ns for f in features_list], dtype=np.float64)
        refine = np.array([f.sort_filtered for f in features_list], dtype=np.float64)
        return wp * nc + wr * nc * refine + ws * ns
