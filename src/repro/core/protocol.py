"""The queryable-index protocol the serving stack programs against.

Until this module existed, :class:`~repro.core.engine.BatchQueryEngine`
hard-required a :class:`~repro.core.index.FloodIndex`, which made the
whole serving stack read-only: :class:`~repro.core.delta.DeltaBufferedFlood`
(inserts) and any future index variant could not sit behind the engine,
the micro-batcher, or the TCP server. The stack is now polymorphic over
anything satisfying :class:`QueryableIndex`:

- ``query(query, visitor, enum_cache=None) -> QueryStats`` — the
  vectorized single-query path (the engine passes its shared enumeration
  cache through; implementations free to ignore it).
- ``query_percell(query, visitor) -> QueryStats`` — the seed's reference
  path, used as the identity oracle by tests and benchmarks.
- ``generation`` — monotonic table-content counter. Immutable indexes
  pin it at 0; mutable ones bump it on every insert/merge, and the
  serving result cache folds it into keys so a stale hit is impossible
  by construction.
- ``table`` — the built clustered table (raises
  :class:`~repro.errors.BuildError` before ``build()``).
- ``size_bytes()`` — index footprint, for the stats surface.

Known implementations: :class:`FloodIndex`,
:class:`~repro.core.shard.ShardedFloodIndex`, and
:class:`~repro.core.delta.DeltaBufferedFlood` (plain or wrapping a
sharded index — the sharded+buffered combination).

:class:`MutableIndex` extends the protocol with the write surface
(``insert`` / ``insert_many`` / ``merge`` plus the buffered-row and
merge counters); :func:`supports_insert` is how the server decides
whether to accept ``insert`` ops on the wire.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.errors import QueryError
from repro.query.predicate import Query
from repro.query.stats import QueryStats
from repro.storage.visitor import Visitor


@runtime_checkable
class QueryableIndex(Protocol):
    """Structural type of anything servable by engine/batcher/server."""

    generation: int

    @property
    def table(self): ...

    def query(
        self, query: Query, visitor: Visitor, enum_cache: dict | None = None
    ) -> QueryStats: ...

    def query_percell(self, query: Query, visitor: Visitor) -> QueryStats: ...

    def size_bytes(self) -> int: ...


@runtime_checkable
class MutableIndex(QueryableIndex, Protocol):
    """A queryable index that also accepts buffered inserts."""

    merges: int
    last_merge_seconds: float

    @property
    def buffered_rows(self) -> int: ...

    def insert(self, row: dict) -> None: ...

    def insert_many(self, rows: dict) -> None: ...

    def merge(self) -> None: ...


def require_queryable(index) -> None:
    """Validate ``index`` against :class:`QueryableIndex`, eagerly.

    Raises :class:`~repro.errors.QueryError` for structurally wrong
    objects (a baseline index, a layout, ...) and lets the index's own
    :class:`~repro.errors.BuildError` propagate when it exists but has
    not been built — touching ``.table`` is deliberate, so misuse fails
    at construction time instead of on the first served query.
    """
    missing = [
        name
        for name in ("query", "query_percell", "size_bytes")
        if not callable(getattr(index, name, None))
    ]
    if missing or not hasattr(index, "generation"):
        raise QueryError(
            f"{type(index).__name__} does not satisfy the queryable-index "
            "protocol (query/query_percell/generation/size_bytes); "
            "use FloodIndex, ShardedFloodIndex, or DeltaBufferedFlood"
        )
    index.table  # raises BuildError when not built


def supports_insert(index) -> bool:
    """Whether ``index`` exposes the mutable surface (duck-typed
    :class:`MutableIndex`); the server gates wire ``insert`` ops on it."""
    return all(
        callable(getattr(index, name, None))
        for name in ("insert", "insert_many", "merge")
    ) and hasattr(index, "buffered_rows")


def mutable_stats(index) -> dict:
    """The mutable-index counter block for the ``stats`` op.

    Zeros for immutable indexes, so operators see one stable shape
    (``buffered_rows`` / ``merges`` / ``last_merge_seconds`` /
    ``generation``) whatever is being served.
    """
    return {
        "generation": int(getattr(index, "generation", 0)),
        "buffered_rows": int(getattr(index, "buffered_rows", 0)),
        "merges": int(getattr(index, "merges", 0)),
        "last_merge_seconds": float(getattr(index, "last_merge_seconds", 0.0)),
        "retrains": int(getattr(index, "retrains", 0)),
    }
