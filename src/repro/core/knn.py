"""k-nearest-neighbor queries over Flood's grid (paper Section 6).

"Flood can easily locate adjacent cells in its grid layout, allowing a
similar kNN algorithm" to the k-d tree's: start from the cell containing
the query point and expand through adjacent cells until the k best
candidates cannot be beaten by any unvisited cell.

Cells are visited in expanding Chebyshev "rings" in column space; each
cell's reachable lower bound is computed from per-column value extents
(min/max of the points actually stored in the column), so the search stops
as soon as the next ring cannot contain a closer point. Distances are
weighted L2; the default weight normalizes each dimension by its data
range, since attributes have incomparable units.
"""

from __future__ import annotations

import heapq
from itertools import product

import numpy as np

from repro.core.index import FloodIndex
from repro.errors import QueryError


class KNNSearcher:
    """Reusable kNN search over a built Flood index.

    Parameters
    ----------
    index:
        A built :class:`FloodIndex`.
    dims:
        Dimensions the distance is computed over (default: every dimension
        in the layout, including the sort dimension).
    weights:
        Per-dim multiplicative weights; default ``1 / (max - min + 1)``
        per dimension (range normalization).
    """

    def __init__(self, index: FloodIndex, dims=None, weights=None):
        self.index = index
        layout = index.layout
        self.dims = list(dims or layout.order)
        for dim in self.dims:
            if dim not in index.table:
                raise QueryError(f"distance dimension {dim!r} not in table")
        table = index.table
        if weights is None:
            weights = {}
            for dim in self.dims:
                lo, hi = table.min_max(dim)
                weights[dim] = 1.0 / max(hi - lo + 1, 1)
        self.weights = {dim: float(weights[dim]) for dim in self.dims}
        # Per grid-dim, per-column value extents of the stored points,
        # used for ring lower bounds.
        self._grid_dims = list(layout.grid_dims)
        self._columns = dict(zip(layout.grid_dims, layout.columns))
        self._extents = {}
        for dim, cols in zip(layout.grid_dims, layout.columns):
            assignment = index._flattener.column_of(dim, table.values(dim), cols)
            values = table.values(dim)
            mins = np.full(cols, np.iinfo(np.int64).max, dtype=np.int64)
            maxs = np.full(cols, np.iinfo(np.int64).min, dtype=np.int64)
            np.minimum.at(mins, assignment, values)
            np.maximum.at(maxs, assignment, values)
            self._extents[dim] = (mins, maxs)
        self._matrix = table.column_matrix(self.dims)
        self._weight_vector = np.array([self.weights[d] for d in self.dims])

    # ---------------------------------------------------------------- search
    def search(self, point: dict, k: int) -> list[tuple[float, int]]:
        """The ``k`` nearest stored rows to ``point``.

        ``point`` maps each distance dimension to a value. Returns
        ``[(distance, physical_row_id), ...]`` sorted by distance.
        """
        if k < 1:
            raise QueryError("k must be >= 1")
        missing = [d for d in self.dims if d not in point]
        if missing:
            raise QueryError(f"point is missing dimensions {missing}")
        index = self.index
        layout = index.layout
        target = np.array([point[d] for d in self.dims], dtype=np.float64)

        home = [
            int(index._flattener.column_of(dim, np.array([point[dim]]), cols)[0])
            for dim, cols in zip(layout.grid_dims, layout.columns)
        ]
        best: list[tuple[float, int]] = []  # max-heap via negated distances

        def consider_cell(combo):
            cell = sum(c * s for c, s in zip(combo, layout.strides))
            start = int(index._cell_starts[cell])
            stop = int(index._cell_starts[cell + 1])
            if stop <= start:
                return
            rows = self._matrix[start:stop]
            deltas = (rows - target) * self._weight_vector
            dists = np.sqrt(np.square(deltas).sum(axis=1))
            for offset in np.argsort(dists)[: k]:
                dist = float(dists[offset])
                if len(best) < k:
                    heapq.heappush(best, (-dist, start + int(offset)))
                elif dist < -best[0][0]:
                    heapq.heapreplace(best, (-dist, start + int(offset)))

        def cell_lower_bound(combo) -> float:
            total = 0.0
            for dim, col in zip(self._grid_dims, combo):
                mins, maxs = self._extents[dim]
                value = point[dim]
                if maxs[col] < mins[col]:
                    return np.inf  # empty column
                if value < mins[col]:
                    gap = (mins[col] - value) * self.weights[dim]
                elif value > maxs[col]:
                    gap = (value - maxs[col]) * self.weights[dim]
                else:
                    gap = 0.0
                total += gap * gap
            return float(np.sqrt(total))

        max_radius = max(
            (self._columns[d] for d in self._grid_dims), default=1
        )
        for radius in range(0, max_radius + 1):
            ring = self._ring_cells(home, radius)
            if not ring:
                if radius > 0 and len(best) == k:
                    break
                continue
            # Prune: if the closest possible point in this ring is farther
            # than the current kth distance, later rings are farther still
            # only per-dimension-wise; conservatively continue one ring past
            # the first prunable one.
            if len(best) == k:
                ring_bound = min(cell_lower_bound(c) for c in ring)
                if ring_bound > -best[0][0]:
                    break
            for combo in ring:
                if len(best) == k and cell_lower_bound(combo) > -best[0][0]:
                    continue
                consider_cell(combo)
        return sorted((-d, row) for d, row in best)

    def _ring_cells(self, home, radius: int):
        """Cells at Chebyshev distance exactly ``radius`` in column space."""
        if not self._grid_dims:
            return [()] if radius == 0 else []
        spans = []
        for dim, center in zip(self._grid_dims, home):
            cols = self._columns[dim]
            lo = max(0, center - radius)
            hi = min(cols - 1, center + radius)
            spans.append(range(lo, hi + 1))
        cells = []
        for combo in product(*spans):
            cheb = max(abs(c - h) for c, h in zip(combo, home))
            if cheb == radius:
                cells.append(combo)
        return cells


def knn(index: FloodIndex, point: dict, k: int, dims=None, weights=None):
    """One-shot kNN (builds a searcher; reuse :class:`KNNSearcher` for
    repeated queries)."""
    return KNNSearcher(index, dims=dims, weights=weights).search(point, k)
