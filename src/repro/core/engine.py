"""Throughput-mode batch query execution over a Flood index.

The single-query path (:meth:`FloodIndex.query`) optimizes latency; this
module optimizes aggregate throughput for serving many queries: plans are
built through a shared enumeration cache (queries that project to the same
column ranges reuse one vectorized cell enumeration), per-query state is
kept in reusable buffers, and an optional worker pool parallelizes across
queries — the numpy kernels (plan gather, lock-step refinement, gathered
scans) release the GIL for their heavy lifting, so threads scale on
multicore without sharding the table. For parallelism *within* one large
query, pair the engine with :class:`~repro.core.shard.ShardedFloodIndex`;
for serving concurrent clients, put :mod:`repro.serve` in front of it.

Every query still gets its own :class:`QueryStats` and visitor, and results
are bit-identical to running :meth:`FloodIndex.query` (or the seed's
per-cell loop) query by query.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace

from repro.baselines.base import timed
from repro.core.protocol import require_queryable
from repro.errors import QueryError
from repro.query.stats import QueryStats, WorkloadResult
from repro.storage.visitor import CountVisitor, Visitor

#: Enumeration-cache entry cap: bounds engine memory for long-running
#: serving processes whose queries keep projecting to new column ranges.
_MAX_CACHE_ENTRIES = 1024


class LRUEnumCache:
    """Bounded LRU memo for plan enumerations, with eviction accounting.

    Duck-types the two operations :meth:`FloodIndex.plan` performs on its
    ``enum_cache`` — ``get(key)`` and ``cache[key] = value`` — so it
    drops in where a plain dict was. Under an adaptive or shifting
    workload the projected-column-range key space is unbounded; a plain
    dict grows without limit, and the engine's old FIFO trim evicted the
    *oldest insert*, which is exactly the entry a stable working set
    keeps reusing. LRU keeps the working set hot and the
    hit/miss/eviction counters make cache health observable (server
    stats op, ``engine_cache`` block).

    Thread-safe: engine workers share one cache; every operation holds
    the lock (entries are immutable once stored, so readers never see a
    partially-built value either way — the lock protects the OrderedDict
    reordering, which *is* a mutation on every hit).
    """

    def __init__(self, capacity: int = _MAX_CACHE_ENTRIES):
        if int(capacity) < 1:
            raise QueryError(f"enum cache needs capacity >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key, default=None):
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def __setitem__(self, key, value) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._data

    def clear(self) -> None:
        """Drop every entry (counters keep accumulating)."""
        with self._lock:
            self._data.clear()

    def stats_payload(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._data),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


@dataclass
class BatchResult:
    """Per-query stats and visitors plus batch-level throughput numbers."""

    stats: list[QueryStats] = field(default_factory=list)
    visitors: list[Visitor] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def num_queries(self) -> int:
        return len(self.stats)

    @property
    def results(self) -> list:
        """Each query's aggregate (visitor result), in input order."""
        return [visitor.result for visitor in self.visitors]

    @property
    def queries_per_second(self) -> float:
        """Aggregate throughput over the batch's wall time.

        Guarded against degenerate timing: an empty batch, or one so fast
        (or so coarsely clocked) that the measured wall time is zero or
        negative, reports ``0.0`` rather than raising or returning ``inf``.
        """
        if self.num_queries == 0 or self.wall_seconds <= 0.0:
            return 0.0
        return self.num_queries / self.wall_seconds

    @property
    def points_matched(self) -> int:
        return sum(s.points_matched for s in self.stats)

    @property
    def points_scanned(self) -> int:
        return sum(s.points_scanned for s in self.stats)

    def workload_result(self, index_name: str) -> WorkloadResult:
        """Adapt to the benchmark harness's per-workload statistics."""
        result = WorkloadResult(index_name)
        for stats in self.stats:
            result.add(stats)
        return result


class BatchQueryEngine:
    """Executes batches of queries against a built queryable index.

    Parameters
    ----------
    index:
        Any built index satisfying the queryable-index protocol
        (:mod:`repro.core.protocol`): a plain :class:`FloodIndex` (any
        ``flatten`` / ``refinement`` variant),
        :class:`~repro.core.shard.ShardedFloodIndex` — engine workers
        then parallelize across queries while each query's scan fans
        out across the shard pool (the pools are distinct and both
        bounded, so the combination cannot deadlock or oversubscribe
        unboundedly) — or a mutable
        :class:`~repro.core.delta.DeltaBufferedFlood`.
    workers:
        Worker threads for query-level parallelism. 1 (default) runs the
        batch on the calling thread; the enumeration cache is shared either
        way (a benign race may duplicate a cache fill under threads, never
        corrupt it, since entries are immutable once stored).
    executor:
        Optional externally-owned :class:`ThreadPoolExecutor` to dispatch
        worker jobs on (the serving layer shares one pool across batches).
        When given, ``workers`` only controls job chunking and the engine
        never shuts the pool down.
    backend:
        Optional scan-backend spec (``'serial'`` / ``'thread'`` /
        ``'process'`` or a :class:`~repro.core.backends.ScanBackend`)
        applied to the index's *intra-query* scans. Requires a
        :class:`~repro.core.shard.ShardedFloodIndex`; plain indexes have
        no shard fan-out to re-target. ``None`` (default) leaves the
        index's own backend untouched. With the process backend, engine
        worker threads submit to one bounded process pool, so the
        combination cannot oversubscribe unboundedly.
    kernel:
        Optional fused scan-kernel spec (``'auto'`` / ``'numba'`` /
        ``'numpy'``) applied to the index via
        :meth:`FloodIndex.use_kernel`. ``None`` (default) leaves the
        index's own kernel configuration untouched.
    cache_entries:
        Enumeration-cache capacity (LRU; default 1024 entries). Hit,
        miss, and eviction counters are reachable through
        :meth:`cache_stats`.
    """

    def __init__(
        self,
        index,
        workers: int = 1,
        executor=None,
        backend=None,
        kernel=None,
        cache_entries: int = _MAX_CACHE_ENTRIES,
    ):
        # Anything satisfying the queryable-index protocol serves: plain,
        # sharded, or delta-buffered (raises BuildError when not built).
        require_queryable(index)
        if backend is not None:
            if not hasattr(index, "use_backend"):
                raise QueryError(
                    "backend= needs a ShardedFloodIndex; wrap the index first "
                    "(ShardedFloodIndex.wrap)"
                )
            index.use_backend(backend)
        if kernel is not None:
            if not hasattr(index, "use_kernel"):
                raise QueryError(
                    "kernel= needs an index with a fused-kernel tier "
                    "(FloodIndex or a wrapper forwarding use_kernel)"
                )
            index.use_kernel(kernel)
        self.index = index
        self.workers = max(1, int(workers))
        self.executor = executor
        self._enum_cache = LRUEnumCache(cache_entries)
        self._cache_table = index.table

    def clear_cache(self) -> None:
        """Drop the shared enumeration cache (e.g. after a workload shift)."""
        self._enum_cache.clear()

    def cache_stats(self) -> dict:
        """Enumeration-cache health: entries/capacity/hits/misses/evictions."""
        return self._enum_cache.stats_payload()

    def _check_cache_epoch(self) -> None:
        """Invalidate the enumeration cache when the clustered table moved.

        A mutable index (``DeltaBufferedFlood``) replaces its clustered
        table wholesale on every merge/re-layout; cached enumerations
        index the *old* table's cell starts and would silently scan the
        wrong rows. Buffered inserts never replace the table, so the
        identity check costs one pointer compare per batch and the cache
        stays hot under write load. (Benign under racing workers: the
        worst case is clearing an already-cleared cache.)
        """
        table = self.index.table
        if table is not self._cache_table:
            self._enum_cache.clear()
            self._cache_table = table

    @staticmethod
    def replay_stats(stats: QueryStats) -> QueryStats:
        """Cache-bypass hook: per-query stats for a result served *without*
        running the engine.

        The serving layer's :class:`~repro.serve.cache.ResultCache` stores
        the :class:`QueryStats` of the execution that populated an entry;
        every request answered from cache gets its own fresh copy through
        this hook, preserving the engine's contract that each query owns a
        private mutable stats object while keeping the counters identical
        to the uncached execution (the work the answer *represents*, even
        though a hit re-performs none of it).
        """
        return replace(stats)

    # ------------------------------------------------------------------- run
    def run(self, queries, visitor_factory=CountVisitor, visitors=None) -> BatchResult:
        """Execute ``queries``; one visitor + one QueryStats per query.

        Parameters
        ----------
        queries:
            Iterable of :class:`~repro.query.predicate.Query`.
        visitor_factory:
            Zero-argument callable producing a fresh visitor per query
            (default ``CountVisitor``); ignored when ``visitors`` is given.
        visitors:
            Optional pre-built visitor list aligned with ``queries`` — the
            serving batcher passes one, since requests in a micro-batch may
            ask for different aggregates.

        Returns
        -------
        :class:`BatchResult` with per-query stats and visitors in input
        order plus the batch's wall time.
        """
        queries = list(queries)
        self._check_cache_epoch()
        if visitors is None:
            visitors = [visitor_factory() for _ in queries]
        elif len(visitors) != len(queries):
            raise QueryError(
                f"{len(queries)} queries but {len(visitors)} visitors"
            )
        stats: list[QueryStats | None] = [None] * len(queries)
        wall_start = timed()
        if self.workers == 1 or len(queries) <= 1:
            for i, query in enumerate(queries):
                stats[i] = self._execute(query, visitors[i])
        else:
            # Chunked jobs: one dispatch per block, not per query, so pool
            # overhead stays negligible even for sub-millisecond queries.
            block = max(1, len(queries) // (self.workers * 4))
            blocks = range(0, len(queries), block)

            def job(first):
                for i in range(first, min(first + block, len(queries))):
                    stats[i] = self._execute(queries[i], visitors[i])

            if self.executor is not None:
                list(self.executor.map(job, blocks))
            else:
                with ThreadPoolExecutor(max_workers=self.workers) as pool:
                    list(pool.map(job, blocks))
        return BatchResult(
            stats=stats, visitors=visitors, wall_seconds=timed() - wall_start
        )

    def _execute(self, query, visitor) -> QueryStats:
        """One query through the vectorized pipeline, via the shared cache.

        The cache evicts inline (LRU, bounded at construction), so there
        is no trim pass here.
        """
        return self.index.query(query, visitor, enum_cache=self._enum_cache)
