"""Pluggable scan backends: where a query's shard scans actually run.

:class:`~repro.core.shard.ShardedFloodIndex` splits one query's coalesced
runs at shard boundaries; a :class:`ScanBackend` decides what executes the
per-shard pieces:

- :class:`SerialBackend` — the calling thread, through the exact serial
  kernel (:meth:`FloodIndex.execute_plan`). The baseline every other
  backend is held identical to.
- :class:`ThreadBackend` — the process-wide thread pool from
  :func:`repro.core.shard.get_scan_pool` (or an injected executor).
  The numpy kernels release the GIL, so column decode and residual
  masking parallelize; *Python-level* visitor work still serializes.
- :class:`ProcessBackend` — a persistent pool of worker **processes**,
  each attached (zero-copy, via :mod:`repro.storage.shm`) to the table's
  shared-memory segments in its initializer. CPU-bound visitor work runs
  on real cores; workers ship back compact partial aggregates.

Result shipping uses the **mergeable-visitor protocol**
(:func:`repro.storage.visitor.is_mergeable`): when the caller's visitor
implements ``fresh()``/``merge()``, every worker scans into its own fresh
visitor and the partials are merged in shard (storage) order — a few
counters cross the pool boundary instead of recorded mask arrays, and the
thread path skips the replay pass it used to need. Arbitrary visitors
still work: the fallback records ``(start, stop, mask)`` visits per shard
and replays them into the caller's visitor in storage order, exactly as
the pre-backend sharded scan did.

Identity is the contract: for any backend, results and the
``points_scanned`` / ``points_matched`` / ``exact_points`` counters match
:meth:`FloodIndex.query` and the seed's :meth:`FloodIndex.query_percell`
bit for bit.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor

from repro.errors import BuildError, QueryError
from repro.query.stats import QueryStats
from repro.storage.scan import scan_runs
from repro.storage.shm import SharedMemoryTable, ShmTableHandle
from repro.storage.visitor import RecordingVisitor, Visitor, is_mergeable

#: Spec strings accepted by :func:`resolve_backend` (and the CLIs).
BACKEND_NAMES = ("serial", "thread", "process")


def _group_runs_by_code(
    runs: list[tuple[int, int, int]]
) -> dict[int, list[tuple[int, int]]]:
    """Group ``(start, stop, code)`` runs by residual-check code.

    Exactly the grouping :meth:`FloodIndex.execute_plan` performs (dict
    insertion order = first-appearance order), factored out so worker
    processes — which have the runs and the resolved bounds but no
    ``QueryPlan`` — scan in the identical order.
    """
    by_code: dict[int, list[tuple[int, int]]] = {}
    for start, stop, code in runs:
        by_code.setdefault(code, []).append((start, stop))
    return by_code


def _scan_worker_kernel(
    table,
    runs: list[tuple[int, int, int]],
    bounds_by_code: dict[int, list[tuple[str, int, int]]],
    visitor: Visitor,
    kernel=None,
) -> tuple[int, int, int, int]:
    """One shard's scan: group by code, run the batched kernel per group.

    ``kernel`` is an optional fused-scan tier
    (:class:`~repro.storage.kernels.ScanKernel` or spec string) applied
    to every fusable group. Returns ``(points_scanned, points_matched,
    exact_points, kernel_groups)``; the visitor accumulates in place.
    Shared by the process workers and the identity tests.
    """
    scanned = matched = exact = 0
    local = QueryStats()
    for code, spans in _group_runs_by_code(runs).items():
        bounds = bounds_by_code[code]
        got_scanned, got_matched = scan_runs(
            table, bounds, spans, visitor, kernel=kernel, stats=local
        )
        scanned += got_scanned
        matched += got_matched
        if not bounds:
            exact += got_scanned
    return scanned, matched, exact, local.kernel_groups


class ScanBackend(ABC):
    """Strategy object executing per-shard run lists for a sharded index.

    One backend instance may be shared by many queries (and, for thread
    and serial, many indexes); backends hold no per-query state.
    """

    name = "?"

    @abstractmethod
    def scan(self, index, plan, query, visitor, stats, per_shard) -> None:
        """Scan ``per_shard`` (non-empty run lists in shard order) into
        ``visitor``, accumulating the scan counters into ``stats``."""

    def shutdown(self) -> None:
        """Release pools and shared resources (idempotent; optional)."""


class SerialBackend(ScanBackend):
    """Everything on the calling thread — the reference strategy.

    Useful to pin down whether parallelism is paying for itself, and as
    the identity baseline in the backend benchmarks.
    """

    name = "serial"

    def scan(self, index, plan, query, visitor, stats, per_shard) -> None:
        from repro.core.index import FloodIndex

        runs = [run for shard_runs in per_shard for run in shard_runs]
        FloodIndex.execute_plan(index, plan, query, visitor, stats, runs=runs)


class ThreadBackend(ScanBackend):
    """Shard scans on the process-wide thread pool (the PR-2 strategy,
    upgraded with mergeable partial aggregates).

    Mergeable visitors skip the record-then-replay pass entirely: each
    worker thread scans into its own fresh visitor and the partials merge
    in shard order. Non-mergeable visitors keep the
    :class:`RecordingVisitor` replay fallback.

    Parameters
    ----------
    executor:
        Worker pool; ``None`` (default) uses the lazily-created
        process-wide pool from :func:`repro.core.shard.get_scan_pool`.
    """

    name = "thread"

    def __init__(self, executor=None):
        self.executor = executor

    def _pool(self):
        if self.executor is not None:
            return self.executor
        from repro.core.shard import get_scan_pool

        return get_scan_pool()

    def scan(self, index, plan, query, visitor, stats, per_shard) -> None:
        from repro.core.index import FloodIndex

        serial_execute = FloodIndex.execute_plan
        mergeable = is_mergeable(visitor)

        def scan_shard(shard_runs):
            shard_visitor = visitor.fresh() if mergeable else RecordingVisitor()
            local = QueryStats()
            serial_execute(index, plan, query, shard_visitor, local, runs=shard_runs)
            return shard_visitor, local

        table = index.table
        for shard_visitor, local in self._pool().map(scan_shard, per_shard):
            if mergeable:
                visitor.merge(shard_visitor)
            else:
                shard_visitor.replay(table, visitor)
            stats.points_scanned += local.points_scanned
            stats.points_matched += local.points_matched
            stats.exact_points += local.exact_points
            stats.kernel_groups += local.kernel_groups
            if local.kernel_tier:
                stats.kernel_tier = local.kernel_tier


# ---------------------------------------------------------------- processes
#: Per-worker attached table, set once by the pool initializer. Module
#: global (not an arg) so the table never rides along with task payloads.
_WORKER_TABLE: SharedMemoryTable | None = None


def _worker_attach(handle: ShmTableHandle) -> None:
    """Process-pool initializer: map the shared table once per worker."""
    global _WORKER_TABLE
    _WORKER_TABLE = SharedMemoryTable.attach(handle)


def _worker_scan(task):
    """One shard's scan inside a worker process.

    ``task`` is ``(runs, bounds_by_code, prototype, kernel_tier)`` where
    ``prototype`` is a fresh mergeable visitor (unpickled here into this
    task's private accumulator) or ``None`` for the recording fallback,
    and ``kernel_tier`` is the parent index's resolved fused-kernel tier
    (or ``None``) — the tier string crosses the pool boundary, the
    worker resolves its own process-local kernel singleton. Returns
    ``(payload, scanned, matched, exact, kernel_groups)`` — the payload
    is the filled visitor (compact partial aggregate) or the recorded
    visits list.
    """
    runs, bounds_by_code, prototype, kernel_tier = task
    table = _WORKER_TABLE
    if table is None:  # pool used without its initializer; cannot happen via ProcessBackend
        raise BuildError("scan worker has no attached table")
    kernel = None
    if kernel_tier is not None:
        from repro.storage.kernels import get_kernel

        kernel = get_kernel(kernel_tier)
    visitor = prototype if prototype is not None else RecordingVisitor()
    scanned, matched, exact, fused = _scan_worker_kernel(
        table, runs, bounds_by_code, visitor, kernel=kernel
    )
    payload = visitor if prototype is not None else visitor.visits
    return payload, scanned, matched, exact, fused


class ProcessBackend(ScanBackend):
    """Shard scans on a persistent pool of worker processes.

    Setup cost is paid once: the table is copied into shared memory
    (unless it already is one — pass a :class:`SharedMemoryTable` to
    share segments across backends) and each worker process attaches
    zero-copy views in its pool initializer. Per query, only run lists,
    resolved residual bounds, and partial aggregates cross the process
    boundary — a few hundred bytes each way for mergeable visitors.

    Parameters
    ----------
    table:
        The built index's clustered table (or an existing
        :class:`SharedMemoryTable`).
    workers:
        Pool size; default one per core
        (:func:`repro.core.shard.default_num_shards`).
    mp_context:
        Optional ``multiprocessing`` context (the platform default —
        ``fork`` on Linux — is fastest; ``spawn`` also works since
        workers attach by segment name).

    Shutdown (or process exit, via the shm registry's ``atexit`` sweep)
    unlinks every owned segment — no leaks, verified by the tier-1 leak
    test.
    """

    name = "process"

    def __init__(self, table, workers: int | None = None, mp_context=None):
        from repro.core.shard import default_num_shards

        # Validate before the shared-memory copy: a rejected config must
        # not orphan segments (they would linger until the atexit sweep).
        if workers is not None and int(workers) < 1:
            raise QueryError(f"ProcessBackend needs workers >= 1, got {workers}")
        self.workers = int(workers) if workers is not None else default_num_shards()
        if isinstance(table, SharedMemoryTable):
            self.shm_table = table
            self._owns_table = False
        else:
            self.shm_table = SharedMemoryTable.from_table(table)
            self._owns_table = True
        self._mp_context = mp_context
        self._pool: ProcessPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        # Locked check-then-create: concurrent engine worker threads all
        # land here on their first scan, and an unsynchronized race would
        # fork one pool per loser and leak its worker processes.
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_worker_attach,
                    initargs=(self.shm_table.handle,),
                    mp_context=self._mp_context,
                )
            return self._pool

    def scan(self, index, plan, query, visitor, stats, per_shard) -> None:
        pool = self._ensure_pool()
        codes = {code for shard_runs in per_shard for _, _, code in shard_runs}
        bounds_by_code = {
            code: [(dim, *query.bounds(dim)) for dim in plan.checks_for(code)]
            for code in codes
        }
        prototype = visitor.fresh() if is_mergeable(visitor) else None
        kernel_tier = getattr(index, "kernel_tier", None)
        if kernel_tier is not None:
            stats.kernel_tier = kernel_tier
        futures = [
            pool.submit(
                _worker_scan, (shard_runs, bounds_by_code, prototype, kernel_tier)
            )
            for shard_runs in per_shard
        ]
        table = index.table
        for future in futures:  # shard order == storage order, deterministic
            payload, scanned, matched, exact, fused = future.result()
            if prototype is not None:
                visitor.merge(payload)
            else:
                for start, stop, mask in payload:
                    visitor.visit(table, start, stop, mask)
            stats.points_scanned += scanned
            stats.points_matched += matched
            stats.exact_points += exact
            stats.kernel_groups += fused

    def shutdown(self) -> None:
        """Stop the worker pool and unlink owned shared memory (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._owns_table:
            self.shm_table.unlink()


def resolve_backend(spec, table=None, executor=None) -> ScanBackend:
    """Turn a backend spec into a :class:`ScanBackend` instance.

    Parameters
    ----------
    spec:
        A :class:`ScanBackend` (returned as-is), or one of
        ``'serial'`` / ``'thread'`` / ``'process'``.
    table:
        Required for ``'process'`` — the clustered table to share.
    executor:
        Optional thread pool handed to ``'thread'``.
    """
    if isinstance(spec, ScanBackend):
        return spec
    if spec == "serial":
        return SerialBackend()
    if spec == "thread":
        return ThreadBackend(executor=executor)
    if spec == "process":
        if table is None:
            raise QueryError("the process backend needs a built table to share")
        return ProcessBackend(table)
    raise QueryError(
        f"unknown scan backend {spec!r}; use one of {BACKEND_NAMES} "
        "or a ScanBackend instance"
    )
