"""Per-attribute CDF flattening (paper Section 5.1).

Flattening maps each grid dimension through a learned model of its CDF so
that the dimension's columns hold (approximately) equal numbers of points:
a point with value ``v`` in a dimension with ``c`` columns lands in column
``floor(CDF(v) * c)``.

Three model kinds are supported:

- ``'rmi'`` -- the paper's choice: a monotone-leaf Recursive Model Index.
- ``'quantile'`` -- exact empirical quantiles (an ablation upper bound: a
  perfect but larger/slower CDF).
- ``'none'`` -- no flattening: equal-width columns between min and max
  (the "+Sort Dim" rung of the Figure 11 ablation).

Monotonicity of the model is what makes query projection sound: the columns
intersecting ``[lo, hi]`` are exactly ``[col(lo), col(hi)]``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BuildError
from repro.ml.cdf import EmpiricalCDF
from repro.ml.rmi import RecursiveModelIndex

_KINDS = ("rmi", "quantile", "none")


class Flattener:
    """Per-dimension CDF models shared by build-time bucketing and
    query-time projection.

    Parameters
    ----------
    table:
        Source table (only the requested dims are modeled).
    dims:
        Dimensions to model.
    kind:
        ``'rmi'``, ``'quantile'``, or ``'none'``.
    num_leaves:
        RMI leaf experts per dimension (``None`` = sqrt(n)).
    sample_rows:
        Optional row indices to train on (layout optimization trains on a
        sample, Section 7.7).
    """

    def __init__(self, table, dims, kind="rmi", num_leaves=None, sample_rows=None):
        if kind not in _KINDS:
            raise BuildError(f"unknown flattening kind {kind!r}; use one of {_KINDS}")
        self.kind = kind
        self.dims = list(dims)
        self._models = {}
        self._bounds = {}
        for dim in self.dims:
            values = table.values(dim)
            if sample_rows is not None:
                values = values[sample_rows]
            if values.size == 0:
                raise BuildError(f"cannot flatten empty dimension {dim!r}")
            # .item() keeps the column dtype: int64 domains stay exact
            # python ints; float domains keep their fractional bounds
            # (int() truncation would shrink dom_hi and let projection
            # wrongly skip boundary checks on the top column).
            lo, hi = values.min().item(), values.max().item()
            self._bounds[dim] = (lo, hi)
            if kind == "rmi":
                self._models[dim] = RecursiveModelIndex(
                    np.sort(values), num_leaves=num_leaves, leaf="monotone"
                )
            elif kind == "quantile":
                self._models[dim] = EmpiricalCDF(values)
            # kind == 'none' keeps only the bounds.

    def domain(self, dim: str) -> tuple[int, int]:
        """(min, max) of the training data along ``dim``."""
        return self._bounds[dim]

    # ------------------------------------------------------------------- cdf
    def cdf(self, dim: str, values) -> np.ndarray:
        """Model CDF of ``values`` along ``dim``, in [0, 1]."""
        values = np.asarray(values, dtype=np.float64)
        if self.kind == "rmi":
            return np.atleast_1d(self._models[dim].cdf(values))
        if self.kind == "quantile":
            return np.atleast_1d(self._models[dim].evaluate(values))
        lo, hi = self._bounds[dim]
        span = max(hi - lo + 1, 1)
        return np.clip((values - lo) / span, 0.0, 1.0)

    # --------------------------------------------------------------- columns
    def column_of(self, dim: str, values, num_columns: int) -> np.ndarray:
        """Column assignment ``floor(CDF(v) * c)``, clamped to [0, c-1]."""
        cols = np.floor(self.cdf(dim, values) * num_columns).astype(np.int64)
        return np.clip(cols, 0, num_columns - 1)

    def cdf_scalar(self, dim: str, value: float) -> float:
        """Scalar CDF evaluation (the query-projection hot path)."""
        if self.kind == "rmi":
            return self._models[dim].cdf_scalar(value)
        if self.kind == "quantile":
            return float(self._models[dim].evaluate(value))
        lo, hi = self._bounds[dim]
        span = max(hi - lo + 1, 1)
        cdf = (value - lo) / span
        return min(max(cdf, 0.0), 1.0)

    def column_range(
        self, dim: str, low: int, high: int, num_columns: int
    ) -> tuple[int, int]:
        """Inclusive column range intersecting ``[low, high]``.

        Sound because the CDF model is monotone: any value in the range maps
        into ``[col(low), col(high)]``.
        """
        top = num_columns - 1
        first = int(self.cdf_scalar(dim, low) * num_columns)
        last = int(self.cdf_scalar(dim, high) * num_columns)
        return min(first, top), min(last, top)

    # ------------------------------------------------------------------ size
    def size_bytes(self) -> int:
        total = 16 * len(self.dims)  # per-dim bounds
        for model in self._models.values():
            if isinstance(model, RecursiveModelIndex):
                total += model.size_bytes()
            elif isinstance(model, EmpiricalCDF):
                total += model.sorted_values.nbytes
        return int(total)
