"""The Flood index: grid + sort dimension + learned refinement.

Build (Sections 3.1 and 5.1): each grid dimension is flattened through its
CDF model and bucketed into columns; points are ordered by cell id
(depth-first along the dimension ordering) and, within each cell, by the
sort dimension. A cell table records the physical start of every cell, and
each cell gets a delta-bounded PLM over its sort-dimension values.

Query (Sections 3.2 and 5.2):

1. **Projection** -- per grid dimension, map the query bounds through the
   CDF to an inclusive column range; the intersecting cells are the cross
   product of those ranges.
2. **Refinement** -- if the query filters the sort dimension, each cell's
   physical range is narrowed with its PLM (or binary search, for the
   ablation), so scanned sort-dimension values are guaranteed in range.
3. **Scan** -- each refined range is scanned; only *boundary* columns of
   filtered grid dimensions need per-point checks (interior columns are
   exact by monotonicity of the CDF), which is why Flood's time per scanned
   point is low (Table 2).
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.baselines.base import BaseIndex, timed
from repro.core.flatten import Flattener
from repro.core.layout import GridLayout
from repro.errors import BuildError, SchemaError
from repro.ml.plm import PiecewiseLinearModel, lockstep_searchsorted
from repro.query.predicate import Query
from repro.query.stats import QueryStats
from repro.storage.kernels import get_kernel, resolve_kernel
from repro.storage.scan import scan_filtered, scan_runs
from repro.storage.table import Table
from repro.storage.visitor import Visitor

_REFINEMENTS = ("plm", "binary", "none")

#: Below this many planned cells, per-cell scalar refinement beats the
#: lock-step vectorized path (whose ~log(cell width) numpy passes cost more
#: than they save on tiny lane counts).
_LOCKSTEP_MIN_CELLS = 32


class QueryPlan:
    """Vectorized projection result: intersecting cells + residual checks.

    Produced by :meth:`FloodIndex.plan`; arrays are aligned and restricted to
    non-empty cells in ascending cell-id (= storage) order. ``codes`` packs
    each cell's per-dimension boundary flags into an integer so cells can be
    partitioned by residual-check set without building Python tuples per
    cell; :meth:`checks_for` decodes a code back into dimension names.
    """

    __slots__ = (
        "cells",
        "starts",
        "stops",
        "codes",
        "base_checks",
        "grid_dims",
        "cells_enumerated",
        "refine",
        "sort_low",
        "sort_high",
        "_checks_cache",
    )

    def __init__(
        self,
        cells: np.ndarray,
        starts: np.ndarray,
        stops: np.ndarray,
        codes: np.ndarray,
        base_checks: tuple[str, ...],
        grid_dims: tuple[str, ...],
        cells_enumerated: int,
        refine: bool,
        sort_low: int,
        sort_high: int,
    ):
        self.cells = cells
        self.starts = starts
        self.stops = stops
        self.codes = codes
        self.base_checks = base_checks
        self.grid_dims = grid_dims
        self.cells_enumerated = cells_enumerated
        self.refine = refine
        self.sort_low = sort_low
        self.sort_high = sort_high
        self._checks_cache: dict[int, tuple[str, ...]] = {0: base_checks}

    def checks_for(self, code: int) -> tuple[str, ...]:
        """Residual check dims for a packed boundary code (bit K-1-k = dim k)."""
        checks = self._checks_cache.get(code)
        if checks is None:
            num = len(self.grid_dims)
            checks = self.base_checks + tuple(
                self.grid_dims[k]
                for k in range(num)
                if (code >> (num - 1 - k)) & 1
            )
            self._checks_cache[code] = checks
        return checks

    def coalesced_runs(self) -> list[tuple[int, int, int]]:
        """Tasks merged into maximal storage-contiguous runs.

        Consecutive tasks whose physical ranges touch (``stops[i] ==
        starts[i+1]``, which holds for adjacent cell ids and across empty
        cells) and that share a residual-check code are scanned as one
        range. Returns ``(start, stop, code)`` triples in storage order.
        """
        starts, stops, codes = self.starts, self.stops, self.codes
        m = starts.size
        if m == 0:
            return []
        breaks = (starts[1:] != stops[:-1]) | (codes[1:] != codes[:-1])
        first = np.concatenate(([0], np.nonzero(breaks)[0] + 1))
        last = np.concatenate((first[1:] - 1, [m - 1]))
        return [
            (int(starts[f]), int(stops[l]), int(codes[f]))
            for f, l in zip(first, last)
        ]


class FloodIndex(BaseIndex):
    """The learned multi-dimensional index.

    Parameters
    ----------
    layout:
        The grid layout (usually produced by
        :func:`repro.core.optimizer.find_optimal_layout`).
    flatten:
        CDF model kind: ``'rmi'`` (paper), ``'quantile'``, ``'none'``
        (equal-width columns; the Figure 11 "+Sort Dim" rung), or
        ``'conditional'`` (correlation-aware sub-CDFs, Section 6 —
        implemented to verify the paper's claim that it does not pay off).
    refinement:
        ``'plm'`` (paper), ``'binary'`` (Section 3.2.2's simple index), or
        ``'none'`` (skip refinement; sort dimension checked during scan).
    delta:
        PLM per-segment average error bound (paper default 50).
    kernel:
        Fused scan-kernel spec: ``'auto'`` (default; numba when
        installed, else the always-available numpy tier), ``'numba'``,
        ``'numpy'``, or ``None`` to scan through the classic per-run
        path only. Resolved eagerly so ``'numba'`` on an install without
        numba fails here, not mid-query.
    """

    name = "Flood"

    #: Table-content generation. A plain Flood index is immutable after
    #: build, so this never moves; mutable wrappers
    #: (:class:`~repro.core.delta.DeltaBufferedFlood`) bump their own
    #: counter on every insert/merge. The serving layer folds
    #: ``generation`` into result-cache keys, so caching over a mutable
    #: index can never serve a pre-mutation result.
    generation: int = 0

    #: Attributes holding all state :meth:`_build` produces. Lives next to
    #: the build code so additions stay in sync; anything sharing a built
    #: index without rebuilding (``ShardedFloodIndex.wrap``) copies exactly
    #: these. PLM entries are absent under other refinements, hence the
    #: hasattr guard at the copy site.
    _BUILT_STATE_ATTRS = (
        "_table",
        "_sort_values",
        "_cell_starts",
        "_cell_models",
        "_flattener",
        "_plm_cell_offsets",
        "_plm_keys",
        "_plm_pos",
        "_plm_slope",
        "_plm_maxerr",
        "_plm_ends",
    )

    def __init__(
        self,
        layout: GridLayout,
        flatten: str = "rmi",
        refinement: str = "plm",
        delta: float = 50.0,
        kernel: str | None = "auto",
    ):
        super().__init__()
        if refinement not in _REFINEMENTS:
            raise BuildError(
                f"unknown refinement {refinement!r}; use one of {_REFINEMENTS}"
            )
        self.layout = layout
        self.flatten = flatten
        self.refinement = refinement
        self.delta = float(delta)
        self._kernel_spec = kernel
        self._kernel_tier = resolve_kernel(kernel) if kernel is not None else None
        self._scan_kernel = None

    # ----------------------------------------------------------------- kernel
    @property
    def kernel_spec(self) -> str | None:
        """The configured kernel spec (``'auto'``/``'numba'``/``'numpy'``/None)."""
        return self._kernel_spec

    @property
    def kernel_tier(self) -> str | None:
        """The resolved fused-kernel tier this index scans with (or None)."""
        return self._kernel_tier

    @property
    def scan_kernel(self):
        """The resolved :class:`~repro.storage.kernels.ScanKernel` (or None).

        Process-wide singleton per tier, cached on the instance so the
        per-query path pays an attribute load, not a registry lookup.
        """
        if self._kernel_tier is None:
            return None
        kernel = self._scan_kernel
        if kernel is None:
            kernel = self._scan_kernel = get_kernel(self._kernel_tier)
        return kernel

    def use_kernel(self, kernel: str | None) -> str | None:
        """Swap the fused-kernel tier; returns the previous resolved tier.

        Accepts the same specs as the constructor; resolution is eager,
        so an unavailable explicit ``'numba'`` fails here with the index
        untouched.
        """
        tier = resolve_kernel(kernel) if kernel is not None else None
        old = self._kernel_tier
        self._kernel_spec = kernel
        self._kernel_tier = tier
        self._scan_kernel = None
        return old

    # ------------------------------------------------------------------ build
    def _build(self, table: Table) -> None:
        layout = self.layout
        for dim in layout.order:
            if dim not in table:
                raise SchemaError(f"layout dimension {dim!r} not in table")
        if self.flatten == "conditional":
            from repro.core.conditional import ConditionalFlattener

            self._flattener = ConditionalFlattener(
                table, layout.grid_dims, layout.columns
            )
        else:
            self._flattener = Flattener(table, layout.grid_dims, kind=self.flatten)
        n = table.num_rows
        cell_ids = np.zeros(n, dtype=np.int64)
        for dim, cols in zip(layout.grid_dims, layout.columns):
            assignment = self._flattener.column_of(dim, table.values(dim), cols)
            cell_ids = cell_ids * cols + assignment
        sort_values = table.values(layout.sort_dim)
        # Order by (cell, sort value): lexsort's last key is primary.
        order = np.lexsort((sort_values, cell_ids))
        self._table = table.permute(order)
        self._sort_values = sort_values[order]
        num_cells = layout.num_cells
        counts = np.bincount(cell_ids, minlength=num_cells)
        self._cell_starts = np.zeros(num_cells + 1, dtype=np.int64)
        np.cumsum(counts, out=self._cell_starts[1:])
        self._cell_models: list[PiecewiseLinearModel | None] = [None] * num_cells
        if self.refinement == "plm":
            for cell in range(num_cells):
                start, stop = self._cell_starts[cell], self._cell_starts[cell + 1]
                if stop > start:
                    self._cell_models[cell] = PiecewiseLinearModel(
                        self._sort_values[start:stop], delta=self.delta
                    )
            self._flatten_cell_models()

    def build_clustered(self, table: Table) -> "FloodIndex":
        """Build over a table that is *already* in this layout's clustered
        order, skipping the permutation (and its copy of every column).

        This is the fleet-reader fast path: the writer publishes its
        clustered table through shared memory, and the reader's table is
        byte-identical to what :meth:`_build` would produce — re-sorting
        it would allocate a private copy of the whole table and defeat
        the zero-copy attach. The flattener is re-trained here (same
        value multiset → same CDF → same column assignment), then the
        claimed clustering is *verified*: cell ids must be non-decreasing
        and each cell's sort-dimension run non-decreasing. On any
        violation this falls back to the regular :meth:`build` (correct
        even over read-only shared views — ``permute`` copies into fresh
        local arrays), so a caller can never end up with a mis-clustered
        index.
        """
        start = timed()
        layout = self.layout
        for dim in layout.order:
            if dim not in table:
                raise SchemaError(f"layout dimension {dim!r} not in table")
        if self.flatten == "conditional":
            from repro.core.conditional import ConditionalFlattener

            flattener = ConditionalFlattener(
                table, layout.grid_dims, layout.columns
            )
        else:
            flattener = Flattener(table, layout.grid_dims, kind=self.flatten)
        n = table.num_rows
        cell_ids = np.zeros(n, dtype=np.int64)
        for dim, cols in zip(layout.grid_dims, layout.columns):
            assignment = flattener.column_of(dim, table.values(dim), cols)
            cell_ids = cell_ids * cols + assignment
        sort_values = table.values(layout.sort_dim)
        clustered = bool(np.all(cell_ids[1:] >= cell_ids[:-1])) if n > 1 else True
        if clustered and n > 1:
            # Within-cell ordering: sort values may only decrease at a
            # cell boundary.
            decreasing = sort_values[1:] < sort_values[:-1]
            boundary = cell_ids[1:] != cell_ids[:-1]
            clustered = bool(np.all(boundary[decreasing]))
        if not clustered:
            return self.build(table)
        self._flattener = flattener
        self._table = table
        self._sort_values = np.ascontiguousarray(sort_values)
        num_cells = layout.num_cells
        counts = np.bincount(cell_ids, minlength=num_cells)
        self._cell_starts = np.zeros(num_cells + 1, dtype=np.int64)
        np.cumsum(counts, out=self._cell_starts[1:])
        self._cell_models = [None] * num_cells
        if self.refinement == "plm":
            for cell in range(num_cells):
                cstart, cstop = self._cell_starts[cell], self._cell_starts[cell + 1]
                if cstop > cstart:
                    self._cell_models[cell] = PiecewiseLinearModel(
                        self._sort_values[cstart:cstop], delta=self.delta
                    )
            self._flatten_cell_models()
        self.build_seconds = timed() - start
        return self

    def _flatten_cell_models(self) -> None:
        """Concatenate every cell PLM's segments into global arrays.

        The batched refinement path (:meth:`refine_plan`) runs the same
        model+repair algorithm as :meth:`PiecewiseLinearModel._search`, but
        lock-step across all of a query's cells; that needs each cell's
        segment keys/intercepts/slopes addressable by slices of shared
        arrays. Positions are stored *absolute* (cell start added) so
        predictions index straight into ``self._sort_values``.
        """
        offsets = [0]
        keys, pos, slope, maxerr, ends = [], [], [], [], []
        for cell, model in enumerate(self._cell_models):
            if model is not None:
                base = int(self._cell_starts[cell])
                keys.append(model._seg_keys_arr)
                pos.append(model._seg_pos_arr + base)
                slope.append(model._seg_slope_arr)
                maxerr.append(model._seg_maxerr_arr)
                ends.append(model._seg_end_arr + base)
            offsets.append(offsets[-1] + (model.num_segments if model else 0))
        self._plm_cell_offsets = np.asarray(offsets, dtype=np.int64)
        empty_f = np.empty(0, dtype=np.float64)
        self._plm_keys = np.concatenate(keys) if keys else empty_f
        self._plm_pos = np.concatenate(pos) if pos else empty_f
        self._plm_slope = np.concatenate(slope) if slope else empty_f
        self._plm_maxerr = np.concatenate(maxerr) if maxerr else empty_f
        self._plm_ends = (
            np.concatenate(ends) if ends else np.empty(0, dtype=np.int64)
        )

    @property
    def cell_starts(self) -> np.ndarray:
        """Physical start row of every cell (length ``num_cells + 1``).

        ``cell_starts[c]`` is the first row of cell ``c`` in the clustered
        table and ``cell_starts[-1] == num_rows``; shard boundaries are
        chosen along this array so each shard owns whole cells.
        """
        if self._table is None:
            raise BuildError(f"{self.name} index used before build()")
        return self._cell_starts

    # ------------------------------------------------------------------ query
    def _project(self, query: Query):
        """Per-grid-dim inclusive column ranges plus boundary metadata.

        Returns the 2-tuple ``(info, always_check)``: ``info[k] = (dim,
        first, last, check_first, check_last)`` for grid dimension ``k``
        (boundary flags say whether that end column needs per-point checks),
        and ``always_check`` lists dims whose *every* column needs checks
        (conditioned dims under conditional flattening).
        """
        info = []
        always_check = []
        exactable = getattr(self._flattener, "exactable", None)
        for dim, cols in zip(self.layout.grid_dims, self.layout.columns):
            if query.filters(dim):
                low, high = query.bounds(dim)
                first, last = self._flattener.column_range(dim, low, high, cols)
                if exactable is not None and not exactable(dim):
                    # Conditioned dims (conditional flattening): the column
                    # range is a union over predecessor columns, so every
                    # column needs per-point checks.
                    always_check.append(dim)
                    info.append((dim, first, last, False, False))
                else:
                    # Boundary columns need per-point checks, unless the
                    # query bound covers the whole domain on that side.
                    dom_lo, dom_hi = self._flattener.domain(dim)
                    check_first = low > dom_lo
                    check_last = high < dom_hi
                    info.append((dim, first, last, check_first, check_last))
            else:
                info.append((dim, 0, cols - 1, False, False))
        return info, always_check

    def _base_checks(self, query: Query, always_check, refine) -> tuple[str, ...]:
        """Dims needing per-point checks in *every* visited cell: non-indexed
        filtered dims, conditioned dims, and the sort dim when unrefined."""
        layout = self.layout
        base = tuple(
            d for d in query.dims if d not in layout.order and d in self.table
        ) + tuple(always_check)
        if query.filters(layout.sort_dim) and not refine:
            base += (layout.sort_dim,)
        return base

    def plan(self, query: Query, enum_cache: dict | None = None) -> QueryPlan:
        """Vectorized projection: enumerate intersecting cells in bulk.

        Cell ids come from mixed-radix numpy broadcasting over the per-dim
        column ranges (ascending id order = the old ``product()`` order),
        ``cell_starts`` is gathered in one shot, and per-cell residual-check
        sets are packed into integer codes (one bit per grid dim, set on
        boundary columns that need per-point checks).

        ``enum_cache`` (used by the batch engine) memoizes the enumeration
        arrays keyed by the projected column ranges + boundary flags:
        queries that project identically share one enumeration. Cached
        arrays are never mutated downstream (refinement reassigns fresh
        arrays), so sharing is safe.
        """
        if self._table is None:
            raise BuildError(f"{self.name} index used before build()")
        layout = self.layout
        info, always_check = self._project(query)
        sort_filtered = query.filters(layout.sort_dim)
        refine = sort_filtered and self.refinement != "none"
        sort_low, sort_high = query.bounds(layout.sort_dim)
        base_checks = self._base_checks(query, always_check, refine)
        key = (tuple(info), base_checks) if enum_cache is not None else None
        cached = enum_cache.get(key) if key is not None else None
        if cached is None:
            strides = layout.strides
            cells = np.zeros(1, dtype=np.int64)
            codes = np.zeros(1, dtype=np.int64)
            for k, (dim, first, last, check_first, check_last) in enumerate(info):
                offsets = np.arange(first, last + 1, dtype=np.int64) * strides[k]
                flags = np.zeros(last - first + 1, dtype=np.int64)
                if check_first:
                    flags[0] = 1
                if check_last:
                    flags[-1] = 1
                cells = (cells[:, None] + offsets[None, :]).reshape(-1)
                codes = ((codes[:, None] << 1) | flags[None, :]).reshape(-1)
            starts = self._cell_starts[cells]
            stops = self._cell_starts[cells + 1]
            keep = stops > starts
            cached = (cells[keep], starts[keep], stops[keep], codes[keep], cells.size)
            if key is not None:
                enum_cache[key] = cached
        cells, starts, stops, codes, enumerated = cached
        return QueryPlan(
            cells=cells,
            starts=starts,
            stops=stops,
            codes=codes,
            base_checks=base_checks,
            grid_dims=layout.grid_dims,
            cells_enumerated=enumerated,
            refine=refine,
            sort_low=sort_low,
            sort_high=sort_high,
        )

    def refine_plan(self, plan: QueryPlan) -> None:
        """Narrow every planned cell range on the sort dimension, in place.

        All cells share the query's two probes, so refinement runs lock-step
        across the whole cell batch: one vectorized pass per probe instead
        of two Python searches per cell.
        """
        m = plan.starts.size
        if not plan.refine or m == 0:
            return
        low, high = plan.sort_low, plan.sort_high
        if m < _LOCKSTEP_MIN_CELLS:
            # Small plans: two scalar searches per cell are cheaper than the
            # fixed cost of the vectorized passes.
            new_starts = np.empty(m, dtype=np.int64)
            new_stops = np.empty(m, dtype=np.int64)
            cells, starts, stops = plan.cells, plan.starts, plan.stops
            refine_one = self._refine
            for i in range(m):
                new_starts[i], new_stops[i] = refine_one(
                    int(cells[i]), int(starts[i]), int(stops[i]), low, high
                )
        elif self.refinement == "plm":
            new_starts = self._plm_search_cells(plan, float(low), "left")
            new_stops = self._plm_search_cells(plan, float(high), "right")
        else:  # 'binary' (Section 3.2.2's simple index)
            new_starts = lockstep_searchsorted(
                self._sort_values, plan.starts, plan.stops, low, "left"
            )
            new_stops = lockstep_searchsorted(
                self._sort_values, plan.starts, plan.stops, high, "right"
            )
        keep = new_stops > new_starts
        plan.cells = plan.cells[keep]
        plan.starts = new_starts[keep]
        plan.stops = new_stops[keep]
        plan.codes = plan.codes[keep]

    def _plm_search_cells(
        self, plan: QueryPlan, probe: float, side: str
    ) -> np.ndarray:
        """Absolute refined positions of ``probe`` in every planned cell.

        The batched twin of ``PiecewiseLinearModel._search``: locate each
        cell's covering segment (lock-step binary search over the flattened
        segment keys), predict, verify the error-bounded bracket, repair
        failures to the segment's full range, then finish with a lock-step
        binary search over the brackets in the global sort-value array.
        """
        cells, starts, stops = plan.cells, plan.starts, plan.stops
        sort_values = self._sort_values
        n_total = sort_values.size
        seg_lo = self._plm_cell_offsets[cells]
        seg_hi = self._plm_cell_offsets[cells + 1]
        # Rightmost segment with key <= probe, per cell (upper bound - 1).
        upper = lockstep_searchsorted(
            self._plm_keys, seg_lo, seg_hi, probe, "right"
        )
        idx = upper - 1
        routed = idx >= seg_lo  # probe below a cell's first key -> position 0
        idx = np.maximum(idx, seg_lo)
        seg_start = self._plm_pos[idx].astype(np.int64)
        seg_end = self._plm_ends[idx]
        pred = self._plm_pos[idx] + self._plm_slope[idx] * (
            probe - self._plm_keys[idx]
        )
        lo = np.maximum(pred.astype(np.int64) - 1, seg_start)
        hi = np.minimum(
            (pred + self._plm_maxerr[idx]).astype(np.int64) + 2, seg_end
        )
        lo = np.minimum(lo, hi)
        # Bracket verification (cell-relative boundaries become absolute).
        below = sort_values[np.maximum(lo - 1, 0)]
        above = sort_values[np.minimum(hi, n_total - 1)]
        if side == "left":
            ok = ((lo == starts) | (below < probe)) & (
                (hi >= stops) | (above >= probe)
            )
        else:
            ok = ((lo == starts) | (below <= probe)) & (
                (hi >= stops) | (above > probe)
            )
        lo = np.where(ok, lo, seg_start)
        hi = np.where(ok, hi, np.minimum(seg_end, stops))
        out = lockstep_searchsorted(sort_values, lo, hi, probe, side)
        return np.where(routed, out, starts)

    def execute_plan(
        self,
        plan: QueryPlan,
        query: Query,
        visitor: Visitor,
        stats: QueryStats,
        runs: list[tuple[int, int, int]] | None = None,
    ) -> None:
        """Scan a (refined) plan: coalesced runs, grouped by check set.

        Parameters
        ----------
        plan:
            A (refined) :class:`QueryPlan` for ``query``.
        query:
            The query, consulted for residual-check bounds.
        visitor:
            Aggregation visitor fed every matching range.
        stats:
            Mutated in place: ``points_scanned`` / ``points_matched`` /
            ``exact_points`` accumulate over all runs.
        runs:
            Optional pre-computed ``(start, stop, code)`` runs; defaults to
            ``plan.coalesced_runs()``. The sharded index passes each shard's
            run subset through here so per-shard scans reuse this kernel.
        """
        table = self.table
        if runs is None:
            runs = plan.coalesced_runs()
        if not runs:
            return
        kernel = self.scan_kernel
        if kernel is not None:
            stats.kernel_tier = kernel.tier
        by_code: dict[int, list[tuple[int, int]]] = {}
        for start, stop, code in runs:
            by_code.setdefault(code, []).append((start, stop))
        for code, spans in by_code.items():
            checks = plan.checks_for(code)
            bounds = [(d, *query.bounds(d)) for d in checks]
            scanned, matched = scan_runs(
                table, bounds, spans, visitor, kernel=kernel, stats=stats
            )
            stats.points_scanned += scanned
            stats.points_matched += matched
            if not bounds:
                stats.exact_points += scanned

    def query(
        self, query: Query, visitor: Visitor, enum_cache: dict | None = None
    ) -> QueryStats:
        """Execute one range query through the vectorized pipeline.

        Runs the paper's three stages — projection (:meth:`plan`),
        sort-dimension refinement (:meth:`refine_plan`), and the coalesced
        scan (:meth:`execute_plan`) — timing each into the returned stats.

        Parameters
        ----------
        query:
            Conjunction of inclusive ranges; dimensions it does not filter
            are unbounded.
        visitor:
            Aggregation visitor fed every matching range (``mask=None``
            marks exact ranges, enabling the cumulative-aggregate path).
        enum_cache:
            Optional cell-enumeration memo shared across queries (see
            :meth:`plan`); the batch engine passes its own.

        Returns
        -------
        :class:`~repro.query.stats.QueryStats` with the paper's counters
        (cells visited, points scanned/matched, per-stage times).
        """
        stats = QueryStats()
        # ---- projection (timed as a whole; per-cell timers would dominate
        # the very overhead they measure).
        index_start = timed()
        plan = self.plan(query, enum_cache=enum_cache)
        stats.cells_visited = plan.cells_enumerated
        stats.index_time = timed() - index_start
        # ---- refinement: narrow each cell's physical range on the sort dim.
        if plan.refine and plan.starts.size:
            refine_start = timed()
            self.refine_plan(plan)
            stats.refine_time = timed() - refine_start
        # ---- scan.
        scan_start = timed()
        self.execute_plan(plan, query, visitor, stats)
        stats.scan_time = timed() - scan_start
        stats.total_time = stats.index_time + stats.refine_time + stats.scan_time
        return stats

    def query_percell(self, query: Query, visitor: Visitor) -> QueryStats:
        """The seed's per-cell reference path (one ``product()`` combo at a
        time, one scan call per cell).

        Kept verbatim as the baseline for ``benchmarks/bench_throughput.py``
        and for result-identity tests against the vectorized engine; produces
        the same stats counters as :meth:`query`.

        Parameters
        ----------
        query:
            Conjunction of inclusive ranges (same semantics as
            :meth:`query`).
        visitor:
            Aggregation visitor fed every matching range.

        Returns
        -------
        :class:`~repro.query.stats.QueryStats`; counter-identical to
        :meth:`query` on the same query (timings differ, of course).
        """
        stats = QueryStats()
        layout = self.layout
        table = self.table
        index_start = timed()
        info, always_check = self._project(query)
        ranges = [range(first, last + 1) for _, first, last, _, _ in info]
        strides = layout.strides
        sort_dim = layout.sort_dim
        sort_filtered = query.filters(sort_dim)
        refine = sort_filtered and self.refinement != "none"
        sort_low, sort_high = query.bounds(sort_dim)
        base_checks = self._base_checks(query, always_check, refine)
        # Per-dim boundary flags indexed by column (True = needs checking).
        boundary_flags = []
        for dim, first, last, check_first, check_last in info:
            flags = {}
            if check_first:
                flags[first] = True
            if check_last:
                flags[last] = True
            boundary_flags.append(flags)
        grid_dim_names = layout.grid_dims
        cell_starts = self._cell_starts
        tasks = []  # (cell, start, stop, check_dims)
        for combo in product(*ranges):
            cell = 0
            checks = base_checks
            for k, col in enumerate(combo):
                cell += col * strides[k]
                if boundary_flags[k].get(col):
                    checks = checks + (grid_dim_names[k],)
            start = int(cell_starts[cell])
            stop = int(cell_starts[cell + 1])
            stats.cells_visited += 1
            if stop > start:
                tasks.append((cell, start, stop, checks))
        stats.index_time = timed() - index_start

        if refine and tasks:
            refine_start = timed()
            refined = []
            for cell, start, stop, checks in tasks:
                start, stop = self._refine(cell, start, stop, sort_low, sort_high)
                if stop > start:
                    refined.append((cell, start, stop, checks))
            tasks = refined
            stats.refine_time = timed() - refine_start

        scan_start = timed()
        bounds_cache: dict[tuple, list] = {}
        for _, start, stop, checks in tasks:
            if not checks:
                visitor.visit(table, start, stop, None)
                scanned = stop - start
                stats.points_scanned += scanned
                stats.points_matched += scanned
                stats.exact_points += scanned
                continue
            bounds = bounds_cache.get(checks)
            if bounds is None:
                bounds = [(d, *query.bounds(d)) for d in checks]
                bounds_cache[checks] = bounds
            scanned, matched = scan_filtered(table, bounds, start, stop, visitor)
            stats.points_scanned += scanned
            stats.points_matched += matched
        stats.scan_time = timed() - scan_start

        stats.total_time = stats.index_time + stats.refine_time + stats.scan_time
        return stats

    def _refine(self, cell, start, stop, low, high) -> tuple[int, int]:
        """Narrow [start, stop) to sort-dimension values in [low, high]."""
        if self.refinement == "plm":
            model = self._cell_models[cell]
            if model is None:
                return start, start
            i1 = model.search_left(low)
            i2 = model.search_right(high)
            return start + i1, start + i2
        section = self._sort_values[start:stop]
        i1 = int(np.searchsorted(section, low, side="left"))
        i2 = int(np.searchsorted(section, high, side="right"))
        return start + i1, start + i2

    # ------------------------------------------------------------------- size
    def size_bytes(self) -> int:
        """Index footprint: cell table + flattening models + per-cell PLMs.

        As in the paper (Section 7.4), over 95% of this is typically the
        per-cell sort-dimension models.
        """
        if self._table is None:
            return 0
        total = int(self._cell_starts.nbytes) + self._flattener.size_bytes()
        for model in self._cell_models:
            if model is not None:
                total += model.size_bytes()
        return total

    def refinement_model_bytes(self) -> int:
        """Footprint of the per-cell models alone (Figure 8 discussion)."""
        return sum(m.size_bytes() for m in self._cell_models if m is not None)
