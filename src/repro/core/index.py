"""The Flood index: grid + sort dimension + learned refinement.

Build (Sections 3.1 and 5.1): each grid dimension is flattened through its
CDF model and bucketed into columns; points are ordered by cell id
(depth-first along the dimension ordering) and, within each cell, by the
sort dimension. A cell table records the physical start of every cell, and
each cell gets a delta-bounded PLM over its sort-dimension values.

Query (Sections 3.2 and 5.2):

1. **Projection** -- per grid dimension, map the query bounds through the
   CDF to an inclusive column range; the intersecting cells are the cross
   product of those ranges.
2. **Refinement** -- if the query filters the sort dimension, each cell's
   physical range is narrowed with its PLM (or binary search, for the
   ablation), so scanned sort-dimension values are guaranteed in range.
3. **Scan** -- each refined range is scanned; only *boundary* columns of
   filtered grid dimensions need per-point checks (interior columns are
   exact by monotonicity of the CDF), which is why Flood's time per scanned
   point is low (Table 2).
"""

from __future__ import annotations

from itertools import product

import numpy as np

from repro.baselines.base import BaseIndex, timed
from repro.core.flatten import Flattener
from repro.core.layout import GridLayout
from repro.errors import BuildError, SchemaError
from repro.ml.plm import PiecewiseLinearModel
from repro.query.predicate import Query
from repro.query.stats import QueryStats
from repro.storage.scan import scan_filtered
from repro.storage.table import Table
from repro.storage.visitor import Visitor

_REFINEMENTS = ("plm", "binary", "none")


class FloodIndex(BaseIndex):
    """The learned multi-dimensional index.

    Parameters
    ----------
    layout:
        The grid layout (usually produced by
        :func:`repro.core.optimizer.find_optimal_layout`).
    flatten:
        CDF model kind: ``'rmi'`` (paper), ``'quantile'``, ``'none'``
        (equal-width columns; the Figure 11 "+Sort Dim" rung), or
        ``'conditional'`` (correlation-aware sub-CDFs, Section 6 —
        implemented to verify the paper's claim that it does not pay off).
    refinement:
        ``'plm'`` (paper), ``'binary'`` (Section 3.2.2's simple index), or
        ``'none'`` (skip refinement; sort dimension checked during scan).
    delta:
        PLM per-segment average error bound (paper default 50).
    """

    name = "Flood"

    def __init__(
        self,
        layout: GridLayout,
        flatten: str = "rmi",
        refinement: str = "plm",
        delta: float = 50.0,
    ):
        super().__init__()
        if refinement not in _REFINEMENTS:
            raise BuildError(
                f"unknown refinement {refinement!r}; use one of {_REFINEMENTS}"
            )
        self.layout = layout
        self.flatten = flatten
        self.refinement = refinement
        self.delta = float(delta)

    # ------------------------------------------------------------------ build
    def _build(self, table: Table) -> None:
        layout = self.layout
        for dim in layout.order:
            if dim not in table:
                raise SchemaError(f"layout dimension {dim!r} not in table")
        if self.flatten == "conditional":
            from repro.core.conditional import ConditionalFlattener

            self._flattener = ConditionalFlattener(
                table, layout.grid_dims, layout.columns
            )
        else:
            self._flattener = Flattener(table, layout.grid_dims, kind=self.flatten)
        n = table.num_rows
        cell_ids = np.zeros(n, dtype=np.int64)
        for dim, cols in zip(layout.grid_dims, layout.columns):
            assignment = self._flattener.column_of(dim, table.values(dim), cols)
            cell_ids = cell_ids * cols + assignment
        sort_values = table.values(layout.sort_dim)
        # Order by (cell, sort value): lexsort's last key is primary.
        order = np.lexsort((sort_values, cell_ids))
        self._table = table.permute(order)
        self._sort_values = sort_values[order]
        num_cells = layout.num_cells
        counts = np.bincount(cell_ids, minlength=num_cells)
        self._cell_starts = np.zeros(num_cells + 1, dtype=np.int64)
        np.cumsum(counts, out=self._cell_starts[1:])
        self._cell_models: list[PiecewiseLinearModel | None] = [None] * num_cells
        if self.refinement == "plm":
            for cell in range(num_cells):
                start, stop = self._cell_starts[cell], self._cell_starts[cell + 1]
                if stop > start:
                    self._cell_models[cell] = PiecewiseLinearModel(
                        self._sort_values[start:stop], delta=self.delta
                    )

    # ------------------------------------------------------------------ query
    def _project(self, query: Query):
        """Per-grid-dim inclusive column ranges plus boundary metadata.

        Returns (ranges, boundary_info) where ranges[i] = (first, last) and
        boundary_info[i] = (dim, first, last, filtered).
        """
        ranges = []
        info = []
        always_check = []
        exactable = getattr(self._flattener, "exactable", None)
        for dim, cols in zip(self.layout.grid_dims, self.layout.columns):
            if query.filters(dim):
                low, high = query.bounds(dim)
                first, last = self._flattener.column_range(dim, low, high, cols)
                if exactable is not None and not exactable(dim):
                    # Conditioned dims (conditional flattening): the column
                    # range is a union over predecessor columns, so every
                    # column needs per-point checks.
                    always_check.append(dim)
                    info.append((dim, first, last, False, False))
                else:
                    # Boundary columns need per-point checks, unless the
                    # query bound covers the whole domain on that side.
                    dom_lo, dom_hi = self._flattener.domain(dim)
                    check_first = low > dom_lo
                    check_last = high < dom_hi
                    info.append((dim, first, last, check_first, check_last))
            else:
                first, last = 0, cols - 1
                info.append((dim, first, last, False, False))
            ranges.append(range(first, last + 1))
        return ranges, info, always_check

    def query(self, query: Query, visitor: Visitor) -> QueryStats:
        stats = QueryStats()
        layout = self.layout
        table = self.table

        # ---- projection: enumerate intersecting cells and their residual
        # check dimensions (timed as a whole; per-cell timers would dominate
        # the very overhead they measure).
        index_start = timed()
        ranges, info, always_check = self._project(query)
        strides = layout.strides
        sort_dim = layout.sort_dim
        sort_filtered = query.filters(sort_dim)
        refine = sort_filtered and self.refinement != "none"
        sort_low, sort_high = query.bounds(sort_dim)
        # Dims filtered by the query but not guaranteed by the grid for at
        # least some cells: non-indexed dims always; boundary columns of
        # filtered grid dims per cell; sort dim when not refined.
        base_checks = tuple(
            d for d in query.dims if d not in layout.order and d in table
        ) + tuple(always_check)
        if sort_filtered and not refine:
            base_checks += (sort_dim,)
        # Per-dim boundary flags indexed by column (True = needs checking).
        boundary_flags = []
        for (dim, first, last, check_first, check_last), cols in zip(
            info, ranges
        ):
            flags = {}
            if check_first:
                flags[first] = True
            if check_last:
                flags[last] = True
            boundary_flags.append(flags)
        grid_dim_names = layout.grid_dims
        cell_starts = self._cell_starts
        tasks = []  # (cell, start, stop, check_dims)
        for combo in product(*ranges):
            cell = 0
            checks = base_checks
            for k, col in enumerate(combo):
                cell += col * strides[k]
                if boundary_flags[k].get(col):
                    checks = checks + (grid_dim_names[k],)
            start = int(cell_starts[cell])
            stop = int(cell_starts[cell + 1])
            stats.cells_visited += 1
            if stop > start:
                tasks.append((cell, start, stop, checks))
        stats.index_time = timed() - index_start

        # ---- refinement: narrow each cell's physical range on the sort dim.
        if refine and tasks:
            refine_start = timed()
            refined = []
            for cell, start, stop, checks in tasks:
                start, stop = self._refine(cell, start, stop, sort_low, sort_high)
                if stop > start:
                    refined.append((cell, start, stop, checks))
            tasks = refined
            stats.refine_time = timed() - refine_start

        # ---- scan. Residual bounds are resolved once per distinct check
        # set, not once per cell.
        scan_start = timed()
        bounds_cache: dict[tuple, list] = {}
        for _, start, stop, checks in tasks:
            if not checks:
                visitor.visit(table, start, stop, None)
                scanned = stop - start
                stats.points_scanned += scanned
                stats.points_matched += scanned
                stats.exact_points += scanned
                continue
            bounds = bounds_cache.get(checks)
            if bounds is None:
                bounds = [(d, *query.bounds(d)) for d in checks]
                bounds_cache[checks] = bounds
            scanned, matched = scan_filtered(table, bounds, start, stop, visitor)
            stats.points_scanned += scanned
            stats.points_matched += matched
        stats.scan_time = timed() - scan_start

        stats.total_time = stats.index_time + stats.refine_time + stats.scan_time
        return stats

    def _refine(self, cell, start, stop, low, high) -> tuple[int, int]:
        """Narrow [start, stop) to sort-dimension values in [low, high]."""
        if self.refinement == "plm":
            model = self._cell_models[cell]
            if model is None:
                return start, start
            i1 = model.search_left(low)
            i2 = model.search_right(high)
            return start + i1, start + i2
        section = self._sort_values[start:stop]
        i1 = int(np.searchsorted(section, low, side="left"))
        i2 = int(np.searchsorted(section, high, side="right"))
        return start + i1, start + i2

    # ------------------------------------------------------------------- size
    def size_bytes(self) -> int:
        """Index footprint: cell table + flattening models + per-cell PLMs.

        As in the paper (Section 7.4), over 95% of this is typically the
        per-cell sort-dimension models.
        """
        if self._table is None:
            return 0
        total = int(self._cell_starts.nbytes) + self._flattener.size_bytes()
        for model in self._cell_models:
            if model is not None:
                total += model.size_bytes()
        return total

    def refinement_model_bytes(self) -> int:
        """Footprint of the per-cell models alone (Figure 8 discussion)."""
        return sum(m.size_bytes() for m in self._cell_models if m is not None)
