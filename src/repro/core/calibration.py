"""Cost-model calibration (paper Section 4.1.1).

Flood trains its weight models *once per machine*: it generates random
layouts over an arbitrary (possibly synthetic) dataset, runs a query
workload on each, and measures, per query, the statistics
(:class:`~repro.core.cost.QueryFeatures`) together with the realized
weights ``wp = projection_time / Nc``, ``wr = refinement_time / Nc``,
``ws = scan_time / Ns``. A random forest per weight is then fit on these
examples. Table 3 shows the resulting model transfers across datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cost import LearnedCostModel, QueryFeatures
from repro.core.index import FloodIndex
from repro.core.layout import GridLayout
from repro.ml.forest import RandomForestRegressor
from repro.storage.visitor import CountVisitor


@dataclass
class CalibrationData:
    """Raw training examples: one row per (query, random layout) pair."""

    features: list[QueryFeatures] = field(default_factory=list)
    wp: list[float] = field(default_factory=list)
    wr: list[float] = field(default_factory=list)
    ws: list[float] = field(default_factory=list)
    #: Extra per-example measurements kept for Figure 5.
    ns: list[int] = field(default_factory=list)
    run_length: list[float] = field(default_factory=list)

    def matrix(self) -> np.ndarray:
        return np.stack([f.to_vector() for f in self.features])

    def __len__(self) -> int:
        return len(self.features)


def random_layout(
    dims, rng: np.random.Generator, max_cells: int = 4096
) -> GridLayout:
    """A random layout: random dimension ordering, random column counts
    targeting a random total cell count (Section 4.1.1)."""
    order = list(dims)
    rng.shuffle(order)
    k = len(order) - 1
    if k == 0:
        return GridLayout(tuple(order), ())
    # Log-uniform cell-count target from 2 (nearly a clustered index, long
    # scan runs) to max_cells (tiny cells): the weight models must see both
    # regimes or ws extrapolates badly at long run lengths.
    target = float(rng.uniform(np.log(2), np.log(max_cells)))
    shares = rng.dirichlet(np.ones(k)) * target
    columns = tuple(max(1, int(round(np.exp(s)))) for s in shares)
    return GridLayout(tuple(order), columns)


def generate_training_examples(
    table,
    queries,
    num_layouts: int = 10,
    seed: int = 0,
    flatten: str = "rmi",
    max_cells: int = 4096,
    repeats: int = 2,
) -> CalibrationData:
    """Run ``queries`` on ``num_layouts`` random layouts, measuring weights.

    Each query on each layout yields one training example (the paper found
    10 random layouts sufficient). Each query runs ``repeats`` times and the
    fastest run is kept — single-shot wall-clock weights are noisy enough to
    visibly perturb the learned layouts.
    """
    rng = np.random.default_rng(seed)
    data = CalibrationData()
    dims = list(table.dims)
    for _ in range(num_layouts):
        layout = random_layout(dims, rng, max_cells=max_cells)
        index = FloodIndex(layout, flatten=flatten).build(table)
        for query in queries:
            stats = index.query(query, CountVisitor())
            for _ in range(repeats - 1):
                candidate = index.query(query, CountVisitor())
                if candidate.total_time < stats.total_time:
                    stats = candidate
            nc = max(stats.cells_visited, 1)
            features = QueryFeatures(
                total_cells=layout.num_cells,
                nc=stats.cells_visited,
                ns=stats.points_scanned,
                dims_filtered=len(query),
                sort_filtered=query.filters(layout.sort_dim),
                table_rows=table.num_rows,
            )
            data.features.append(features)
            data.wp.append(stats.index_time / nc)
            data.wr.append(stats.refine_time / nc)
            data.ws.append(
                stats.scan_time / stats.points_scanned
                if stats.points_scanned
                else 0.0
            )
            data.ns.append(stats.points_scanned)
            data.run_length.append(features.avg_run_length)
    return data


def calibrate(
    table,
    queries,
    num_layouts: int = 10,
    seed: int = 0,
    n_estimators: int = 20,
    max_depth: int = 10,
) -> LearnedCostModel:
    """End-to-end calibration: examples -> three weight forests."""
    data = generate_training_examples(table, queries, num_layouts, seed=seed)
    return fit_cost_model(data, n_estimators=n_estimators, max_depth=max_depth, seed=seed)


def fit_cost_model(
    data: CalibrationData,
    n_estimators: int = 20,
    max_depth: int = 10,
    seed: int = 0,
    log_space: bool = True,
) -> LearnedCostModel:
    """Fit the three weight forests on pre-generated examples.

    ``log_space`` trains on log-weights (default): the realized weights
    span ~50x in this substrate, and raw-space regression lets the largest
    weights dominate the split criterion, mispricing long scan runs.
    """
    matrix = data.matrix()
    floor = 1e-10
    models = []
    for targets in (data.wp, data.wr, data.ws):
        targets = np.maximum(np.asarray(targets, dtype=np.float64), floor)
        if log_space:
            targets = np.log(targets)
        forest = RandomForestRegressor(
            n_estimators=n_estimators, max_depth=max_depth, seed=seed
        )
        forest.fit(matrix, targets)
        models.append(forest)
    return LearnedCostModel(*models, weight_floor=floor, log_space=log_space)
