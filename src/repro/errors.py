"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SchemaError(ReproError):
    """A table, query, or layout refers to an unknown or invalid dimension."""


class BuildError(ReproError):
    """An index or model could not be built from the given inputs."""


class QueryError(ReproError):
    """A query is malformed (e.g. inverted range, wrong arity)."""


class OverloadedError(QueryError):
    """Admission control shed the request; the caller may retry later.

    The serving layer maps this to the structured wire reply
    ``{"ok": false, "error": "overloaded", "retry": true}``.
    """


class NotFittedError(ReproError):
    """A model was used before being fitted."""


class DurabilityError(ReproError):
    """A durability operation (WAL append/fsync, snapshot write/rename,
    recovery) failed or found inconsistent on-disk state.

    Raised *instead of* acknowledging a write: the serving layer maps it
    to an error reply, so a client never holds an ack for a row whose
    log record may not exist. Failures are fail-stop on the WAL append
    path — after an append or fsync error the log refuses further
    writes rather than risking a corrupt frame mid-file.
    """
