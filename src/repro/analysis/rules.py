"""The project-specific invariant rules behind ``repro check``.

Each rule encodes a convention that already produced (or nearly
produced) a real bug in this codebase; ``docs/architecture.md`` lists
the history. Rules are heuristic and name-based — the goal is catching
the regression *classes* cheaply, with ``# repro: allow(<rule>)`` as the
reviewed escape hatch for deliberate exceptions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.callgraph import dotted, walk_own
from repro.analysis.cfg import build_cfg
from repro.analysis.core import Rule, register
from repro.analysis.dataflow import (
    MAY, MUST, Analysis, SuspensionCrossing, run as run_dataflow,
)


@dataclass(frozen=True)
class _Anchor:
    """A synthetic finding location for diagnostics that do not point at
    a single AST node (e.g. a dataflow fact's origin line)."""

    lineno: int
    col_offset: int = 0


# --------------------------------------------------------------- loop-safety
@register
class LoopSafetyRule(Rule):
    """No blocking or known-heavy calls reachable from ``async def``
    bodies in ``serve/`` — callgraph-propagated, not just syntactic."""

    name = "loop-safety"
    description = (
        "async serving code must never block the event loop: no sleeps, "
        "blocking I/O, synchronous executor waits, or heavy core/* calls "
        "reachable from an async def in serve/"
    )
    fix_hint = (
        "run the blocking work via loop.run_in_executor(...) "
        "(see MutableController._run_maintenance)"
    )

    def check(self, source, project):
        if not source.in_package("serve"):
            return
        graph = project.callgraph
        for fn in graph.functions_in(source):
            if not fn.is_async:
                continue
            for block in fn.blocking:
                yield self.finding(
                    source, block,
                    f"async {fn.display} calls {block.what} on the event loop",
                )
            for site, trace in graph.blocked_call_sites(fn):
                chain = " -> ".join(trace.chain)
                yield self.finding(
                    source, site,
                    f"async {fn.display} reaches {trace.leaf} "
                    f"through the synchronous chain {chain}",
                )


# ----------------------------------------------------------- resource-release
_SHM_PRODUCER_ATTRS = {"from_table", "attach"}
_SHM_PREPARE_ATTRS = {"prepare_merge", "prepare_relayout"}
_SHM_PRODUCER_NAMES = {"ProcessBackend", "WriteAheadLog"}
_SHM_CLEANUP_ATTRS = {"close", "unlink", "shutdown"}


def _producer_label(node: ast.Call) -> str | None:
    """Human label when ``node`` creates shm-owning state, else None."""
    func = node.func
    if isinstance(func, ast.Name) and func.id in _SHM_PRODUCER_NAMES:
        return f"{func.id}(...)"
    if isinstance(func, ast.Attribute):
        if func.attr in _SHM_PRODUCER_ATTRS | _SHM_PREPARE_ATTRS:
            qualifier = dotted(func.value)
            return f"{qualifier}.{func.attr}" if qualifier else func.attr
        if func.attr == "run_in_executor":
            # The deferred form: run_in_executor(None, index.prepare_merge)
            # or run_in_executor(None, lambda: index.prepare_relayout(...)).
            # The executor runs the producer; the awaited result owns it.
            for arg in node.args[1:]:
                if (
                    isinstance(arg, ast.Attribute)
                    and arg.attr in _SHM_PREPARE_ATTRS | _SHM_PRODUCER_ATTRS
                ):
                    return f"run_in_executor({arg.attr})"
                if isinstance(arg, ast.Lambda):
                    for sub in ast.walk(arg):
                        if (
                            isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)
                            and sub.func.attr
                            in _SHM_PREPARE_ATTRS | _SHM_PRODUCER_ATTRS
                        ):
                            return f"run_in_executor({sub.func.attr})"
    return None


def _parent_map(root: ast.AST) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(root):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def _binding_role(node: ast.AST, parents, fn_node):
    """How a producer call's result is used: ``("bound", name, stmt)``,
    ``("escape", ...)`` (arg / return / attribute target / ...), or
    ``("discard", ...)`` for a bare expression statement."""
    child, parent = node, parents.get(node)
    while parent is not None and parent is not fn_node:
        if isinstance(parent, ast.Call) and child is not parent.func:
            return ("escape", None, None)
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
            return ("escape", None, None)
        if isinstance(parent, ast.Assign):
            if len(parent.targets) == 1 and isinstance(parent.targets[0], ast.Name):
                return ("bound", parent.targets[0].id, parent)
            return ("escape", None, None)  # self.x = ..., a[i] = ..., tuples
        if isinstance(parent, ast.AnnAssign):
            if isinstance(parent.target, ast.Name):
                return ("bound", parent.target.id, parent)
            return ("escape", None, None)
        if isinstance(parent, ast.NamedExpr):
            if isinstance(parent.target, ast.Name):
                return ("bound", parent.target.id, parent)
            return ("escape", None, None)
        if isinstance(parent, ast.Expr):
            return ("discard", None, None)
        child, parent = parent, parents.get(parent)
    return ("escape", None, None)


def _nested_scope_names(fn_node) -> set[str]:
    """Names referenced inside nested defs/lambdas of ``fn_node`` —
    resources captured by a closure escape this function's CFG (cleanup
    often lives in a done-callback), so they are not tracked."""
    names: set[str] = set()
    for node in ast.walk(fn_node):
        if node is fn_node or not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                names.add(sub.id)
    return names


def _escape_names(fn_node) -> set[str]:
    """Names declared ``global``/``nonlocal`` anywhere in the function."""
    names: set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            names.update(node.names)
    return names


class _ReleaseAnalysis(Analysis):
    """May-analysis: which acquired resources are still held here.

    Facts are ``(name, lineno, label)``. A producer generates its fact on
    the *normal* edge only (a failed acquisition owns nothing); any
    discharge — ``close``/``unlink``/``shutdown`` on the name, the name
    passed to a call, returned/yielded, stored into an attribute or
    subscript, or rebound — kills on both edges.
    """

    mode = MAY

    def __init__(self, producers_by_stmt: dict):
        self.producers_by_stmt = producers_by_stmt

    def _discharged(self, node) -> set[str]:
        names: set[str] = set()
        for sub in node.own_nodes():
            if isinstance(sub, ast.Call):
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _SHM_CLEANUP_ATTRS
                    and isinstance(func.value, ast.Name)
                ):
                    names.add(func.value.id)
                for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                    if isinstance(arg, ast.Name):
                        names.add(arg.id)
            elif isinstance(sub, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = getattr(sub, "value", None)
                if value is not None:
                    for name_node in ast.walk(value):
                        if isinstance(name_node, ast.Name):
                            names.add(name_node.id)
            elif isinstance(sub, ast.Assign):
                if any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in sub.targets
                ):
                    for name_node in ast.walk(sub.value):
                        if isinstance(name_node, ast.Name):
                            names.add(name_node.id)
                # Rebinding the holder name loses the old resource; treat
                # it as a (dubious but explicit) discharge of the name.
                for t in sub.targets:
                    if isinstance(t, ast.Name):
                        names.add(t.id)
        return names

    def transfer(self, node, fact):
        killed = self._discharged(node)
        if killed:
            fact = frozenset(f for f in fact if f[0] not in killed)
        produced = self.producers_by_stmt.get(id(node.stmt))
        if not produced:
            return fact
        normal = fact | frozenset(produced)
        return normal, fact


@register
class ResourceReleaseRule(Rule):
    """Every acquired resource — shm table, scan pool, prepared index,
    WAL — must be released or handed off on *every* CFG path out of the
    acquiring function, exception edges included."""

    name = "resource-release"
    description = (
        "resource acquisitions (SharedMemoryTable.from_table/.attach, "
        "ProcessBackend(...), prepare_merge/prepare_relayout, "
        "WriteAheadLog(...)) must reach a close/unlink/shutdown or an "
        "explicit ownership hand-off on every path, exception edges "
        "included — POSIX segments and fds outlive the process otherwise"
    )
    fix_hint = (
        "release it in a finally: (close()/unlink()/shutdown()) or hand "
        "ownership off explicitly (return it / assign it to the owner)"
    )

    def check(self, source, project):
        graph = project.callgraph
        for fn in graph.functions_in(source):
            producers = [
                (node, _producer_label(node))
                for node in walk_own(fn.node)
                if isinstance(node, ast.Call) and _producer_label(node)
            ]
            if not producers:
                continue
            parents = _parent_map(fn.node)
            untracked = _nested_scope_names(fn.node) | _escape_names(fn.node)
            by_stmt: dict[int, list] = {}
            origins: dict[tuple, tuple] = {}
            for node, label in producers:
                role, name, stmt = _binding_role(node, parents, fn.node)
                if role == "discard":
                    yield self.finding(
                        source, node,
                        f"result of {label} is discarded — the segments or "
                        "pool it may own can never be released",
                    )
                    continue
                if role != "bound" or name in untracked:
                    continue  # arg/return/attribute/closure: handed off
                fact = (name, node.lineno, label)
                by_stmt.setdefault(id(stmt), []).append(fact)
                origins[fact] = (node, label)
            if not origins:
                continue
            cfg = build_cfg(fn.node)
            result = run_dataflow(cfg, _ReleaseAnalysis(by_stmt))
            at_exit = result.at(cfg.exit)
            at_raise = result.at(cfg.raise_exit)
            for fact, (node, label) in sorted(
                origins.items(), key=lambda item: item[0][1]
            ):
                name = fact[0]
                if fact in at_exit:
                    yield self.finding(
                        source, node,
                        f"{name} (from {label}) can reach the end of "
                        f"{fn.display} unreleased: no close()/unlink()/"
                        "shutdown() or hand-off on some path",
                    )
                elif fact in at_raise:
                    yield self.finding(
                        source, node,
                        f"{name} (from {label}) is not released on the "
                        f"exception edges of {fn.display} — a raise between "
                        "acquisition and release leaks it",
                    )


# ----------------------------------------------------- generation-discipline
@register
class GenerationDisciplineRule(Rule):
    """Result-cache keys must thread the index generation, so mutations
    invalidate cached replies by construction."""

    name = "generation-discipline"
    description = (
        "ResultCache.make_key call sites must pass generation= (or index= "
        "to derive it); cache puts must not hand-build tuple keys"
    )
    fix_hint = (
        "pass generation=index.generation (0 for an immutable index) or "
        "index=the served index"
    )

    def check(self, source, project):
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "make_key":
                threaded = len(node.args) >= 4 or any(
                    kw.arg in ("generation", "index") for kw in node.keywords
                )
                if not threaded:
                    yield self.finding(
                        source, node,
                        "make_key without generation=/index=: a mutation "
                        "could serve this entry stale",
                    )
            elif func.attr == "put":
                qualifier = (dotted(func.value) or "").lower()
                if "cache" in qualifier and node.args and isinstance(
                    node.args[0], ast.Tuple
                ):
                    yield self.finding(
                        source, node,
                        "hand-built cache key tuple bypasses "
                        "ResultCache.make_key (and its generation field)",
                        fix_hint="build the key with ResultCache.make_key(...)",
                        severity="warning",
                    )


# ---------------------------------------------------------------- strict-json
@register
class StrictJsonRule(Rule):
    """Wire JSON must be strict RFC 8259: no ``Infinity``/``NaN`` out
    (``allow_nan=False``) and none accepted in (``parse_constant``)."""

    name = "strict-json"
    description = (
        "serve/ must not call bare json.dumps/json.loads: outbound needs "
        "allow_nan=False, inbound needs parse_constant rejection "
        "(repro.jsonutil has both)"
    )

    def check(self, source, project):
        if not source.in_package("serve"):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "json"
            ):
                continue
            if func.attr in ("dumps", "dump"):
                allow_nan = next(
                    (kw.value for kw in node.keywords if kw.arg == "allow_nan"),
                    None,
                )
                strict = allow_nan is not None and not (
                    isinstance(allow_nan, ast.Constant) and allow_nan.value is True
                )
                if not strict:
                    yield self.finding(
                        source, node,
                        f"json.{func.attr} without allow_nan=False can emit "
                        "the non-JSON Infinity/NaN literals on the wire",
                        fix_hint="use repro.jsonutil.dumps_strict (or pass "
                        "allow_nan=False after sanitize_json)",
                    )
            elif func.attr in ("loads", "load"):
                if not any(kw.arg == "parse_constant" for kw in node.keywords):
                    yield self.finding(
                        source, node,
                        f"json.{func.attr} without parse_constant accepts "
                        "Infinity/NaN literals that are not valid JSON",
                        fix_hint="use repro.jsonutil.loads_strict (or pass "
                        "parse_constant=reject_nonfinite)",
                    )


# ----------------------------------------------------------- visitor-protocol
def _required_init_params(init_node) -> list[str]:
    args = init_node.args
    positional = list(args.posonlyargs) + list(args.args)
    required = positional[: len(positional) - len(args.defaults)]
    names = [a.arg for a in required if a.arg != "self"]
    names += [
        a.arg
        for a, default in zip(args.kwonlyargs, args.kw_defaults)
        if default is None
    ]
    return names


def _base_names(node: ast.ClassDef) -> list[str]:
    names = []
    for base in node.bases:
        name = dotted(base)
        if name:
            names.append(name.rsplit(".", 1)[-1])
    return names


def _own_methods(node: ast.ClassDef) -> dict[str, ast.AST]:
    return {
        stmt.name: stmt
        for stmt in node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _inherits_concrete(project, node: ast.ClassDef, method: str, seen=None) -> bool:
    """Whether a project-defined ancestor (other than the abstract root
    ``Visitor``, whose fresh/merge are raising stubs) defines ``method``."""
    seen = seen or set()
    for base in _base_names(node):
        if base in seen or base == "Visitor":
            continue
        seen.add(base)
        base_def = project.class_def(base)
        if base_def is None:
            continue
        if method in _own_methods(base_def):
            return True
        if _inherits_concrete(project, base_def, method, seen):
            return True
    return False


@register
class VisitorProtocolRule(Rule):
    """Visitor subclasses claiming mergeability must implement the whole
    ``fresh``/``merge``/``reset`` protocol with dtype-preserving math."""

    name = "visitor-protocol"
    description = (
        "a Visitor defining fresh or merge must define both (is_mergeable "
        "checks both); mergeable visitors with required __init__ args must "
        "override fresh and reset; aggregates must stay dtype-preserving"
    )

    def check(self, source, project):
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(base.endswith("Visitor") for base in _base_names(node)):
                continue
            methods = _own_methods(node)
            effective = {
                m: m in methods or _inherits_concrete(project, node, m)
                for m in ("fresh", "merge")
            }
            if effective["fresh"] != effective["merge"]:
                present = "fresh" if effective["fresh"] else "merge"
                missing = "merge" if effective["fresh"] else "fresh"
                yield self.finding(
                    source, node,
                    f"{node.name} has {present} but not {missing}: "
                    "is_mergeable stays False and backends silently fall "
                    "back to recording/replay",
                    fix_hint=f"implement {missing} (or drop {present})",
                )
            elif effective["fresh"]:
                init = methods.get("__init__")
                required = _required_init_params(init) if init else []
                if required:
                    if "reset" not in methods:
                        yield self.finding(
                            source, node,
                            f"mergeable {node.name} takes required __init__ "
                            f"args {required} but does not override reset() "
                            "— the default reset() cannot re-invoke its "
                            "__init__",
                            fix_hint="override reset() to restore initial state",
                        )
                    if "fresh" not in methods:
                        yield self.finding(
                            source, node,
                            f"mergeable {node.name} takes required __init__ "
                            f"args {required} but inherits fresh() — "
                            "type(self)() cannot construct it",
                            fix_hint="override fresh() to pass the config through",
                        )
            for method_name in ("visit", "merge"):
                body = methods.get(method_name)
                if body is None:
                    continue
                for sub in ast.walk(body):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id in ("int", "float")
                        and len(sub.args) == 1
                        and isinstance(sub.args[0], ast.Call)
                        and isinstance(sub.args[0].func, ast.Attribute)
                        and sub.args[0].func.attr in ("sum", "min", "max")
                    ):
                        yield self.finding(
                            source, sub,
                            f"{node.name}.{method_name} forces the aggregate "
                            f"through {sub.func.id}(...), truncating float "
                            "columns",
                            fix_hint="use .item() — it preserves the column dtype",
                            severity="warning",
                        )


# -------------------------------------------------------------- write-barrier
@register
class WriteBarrierRule(Rule):
    """Index mutations in async serving code must flow through the
    batcher's write barrier, never run inline on the loop."""

    name = "write-barrier"
    description = (
        "async serve/ code must not call insert/insert_many/commit_merge "
        "or poke .generation directly; wrap the mutation in a closure and "
        "submit it via MicroBatcher.submit_write"
    )
    fix_hint = (
        "wrap the mutation in a def write(): ... closure and "
        "await batcher.submit_write(write)"
    )

    _MUTATORS = {"insert", "insert_many", "commit_merge"}

    def check(self, source, project):
        if not source.in_package("serve"):
            return
        graph = project.callgraph
        for fn in graph.functions_in(source):
            if not fn.is_async:
                continue
            for site in fn.calls:
                if site.name not in self._MUTATORS or site.qualifier is None:
                    continue
                if "batcher" in site.qualifier:
                    continue  # the barrier itself
                yield self.finding(
                    source, site,
                    f"async {fn.display} calls .{site.name}() inline — the "
                    "mutation races in-flight micro-batches on executor "
                    "threads",
                )
            for node in walk_own(fn.node):
                targets = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, ast.AugAssign):
                    targets = [node.target]
                for target in targets:
                    if isinstance(target, ast.Attribute) and target.attr == "generation":
                        yield self.finding(
                            source, node,
                            f"async {fn.display} mutates .generation "
                            "directly; generations only move through the "
                            "index's own mutation methods",
                        )


# ------------------------------------------------------------- durability-ack
@register
class DurabilityAckRule(Rule):
    """An insert's wire ack must come *after* the write that logs it —
    a client holding an ack for a row the WAL never saw is exactly the
    data loss the durability tier exists to rule out."""

    name = "durability-ack"
    description = (
        "async serve/ code must not send a reply before the insert "
        "mutation (WAL append + buffer apply) on the same path: apply "
        "the write first, ack second"
    )
    fix_hint = (
        "move the send after the awaited mutation (see "
        "FloodServer._handle_write: the reply is built from "
        "apply_insert's result, which resolves only after the write "
        "closure — WAL append included — ran)"
    )

    #: Wire-ack emitters: raw socket sends, and the StreamWriter pair.
    _SENDERS = {"send", "sendall"}
    _WRITER_SENDERS = {"write", "drain"}
    #: Calls that (transitively) perform the logged mutation.
    _MUTATORS = {"insert", "insert_many", "apply_insert", "submit_write"}

    def _is_sender(self, site) -> bool:
        if site.name in self._SENDERS:
            return True
        # `writer.write(...)` / `writer.drain()` — but not e.g. a WAL's
        # `self.write(...)` or a file handle's: require a writer-ish
        # receiver so the storage layer's own writes never match.
        return (
            site.name in self._WRITER_SENDERS
            and site.qualifier is not None
            and "writer" in site.qualifier
        )

    def check(self, source, project):
        if not source.in_package("serve"):
            return
        graph = project.callgraph
        for fn in graph.functions_in(source):
            if not fn.is_async:
                continue
            senders = [s for s in fn.calls if self._is_sender(s)]
            mutators = [s for s in fn.calls if s.name in self._MUTATORS]
            if not senders or not mutators:
                continue
            for ack in senders:
                before = [
                    mut
                    for mut in mutators
                    if (ack.lineno, ack.col_offset)
                    < (mut.lineno, mut.col_offset)
                    # `await send(await apply_insert(...))` evaluates the
                    # mutation first even though the send's position is
                    # earlier — a nested mutator is not ack-before-log.
                    and not any(n is mut.node for n in ast.walk(ack.node))
                ]
                if before:
                    mut = before[0]
                    yield self.finding(
                        source, ack,
                        f"async {fn.display} sends a reply before the "
                        f".{mut.name}() on line {mut.lineno} — an ack must "
                        "never precede the write (WAL append) it "
                        "acknowledges",
                    )


# ------------------------------------------------------------ await-atomicity
#: Method names that mutate their receiver in place — calling one on a
#: ``self.x`` attribute writes shared state just like ``self.x = ...``.
_INPLACE_MUTATORS = {
    "append", "appendleft", "add", "remove", "discard", "pop", "popleft",
    "popitem", "clear", "update", "extend", "insert", "setdefault",
    "put_nowait",
}


def _self_attr(node) -> str | None:
    """``X`` when ``node`` is the attribute access ``self.X``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _AtomicityAnalysis(SuspensionCrossing):
    """Reads of ``self.*`` that are still *pending* (no intervening write
    to the same attribute), tagged with whether they crossed an await.

    Facts are ``("read", (attr, lineno, guard), crossed)``. ``guard``
    marks reads made inside an ``if``/``while`` header — the
    check-then-act shape. A write to ``self.X`` reports when:

    - a crossed *guard* read of ``X`` is pending (the checked condition
      is stale by the time the write acts on it), or
    - the write is an ``AugAssign`` whose own read crossed
      (``self.x += await f()`` — the classic lost update).

    A plain value read later overwritten (``self.host`` passed to
    ``start_server`` and then rebound from the socket) is deliberately
    not reported — there is no decision taken on the stale value.
    Derived-value flows through locals are out of scope (documented
    limitation).
    """

    def __init__(self):
        self.races: set[tuple] = set()  # (attr, read_line, write_line)

    def gen(self, node, fact):
        reads = set()
        guard = isinstance(node.stmt, (ast.If, ast.While))
        for sub in node.own_nodes():
            attr = _self_attr(sub)
            if attr is not None and isinstance(sub.ctx, ast.Load):
                reads.add(("read", (attr, sub.lineno, guard), False))
        stmt = node.stmt
        if isinstance(stmt, ast.AugAssign):
            attr = _self_attr(stmt.target)
            if attr is not None:
                # self.x += ... reads self.x even though the AST only
                # shows a Store context.
                reads.add(("read", (attr, stmt.lineno, False), False))
        return fact | frozenset(reads)

    def _writes(self, node) -> list[tuple[str, int, str]]:
        writes: list[tuple[str, int, str]] = []
        stmt = node.stmt
        aug_attr = (
            _self_attr(stmt.target) if isinstance(stmt, ast.AugAssign) else None
        )
        for sub in node.own_nodes():
            attr = _self_attr(sub)
            if attr is not None and isinstance(sub.ctx, (ast.Store, ast.Del)):
                kind = "aug" if attr == aug_attr else "store"
                writes.append((attr, sub.lineno, kind))
            elif isinstance(sub, ast.Call):
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _INPLACE_MUTATORS
                ):
                    attr = _self_attr(func.value)
                    if attr is not None:
                        writes.append((attr, sub.lineno, "inplace"))
        return writes

    def use(self, node, fact):
        writes = self._writes(node)
        if not writes:
            return fact
        written = {attr for attr, _, _ in writes}
        for attr, write_line, kind in writes:
            for _tag, (read_attr, read_line, guard), crossed in fact:
                if not crossed or read_attr != attr:
                    continue
                if guard or (kind == "aug" and read_line == write_line):
                    self.races.add((attr, read_line, write_line))
        return frozenset(
            f for f in fact if f[1][0] not in written
        )


@register
class AwaitAtomicityRule(Rule):
    """No read-modify-write of shared ``self.*`` state across an
    ``await`` in serving coroutines: the suspension point is an
    interleaving window for every other task on the loop."""

    name = "await-atomicity"
    description = (
        "async serve/ code must not read self.* state, await, and then "
        "write the same attribute: another task runs inside the window, "
        "so the check-then-act is stale and the write clobbers it"
    )
    fix_hint = (
        "claim the state before the first await (swap it into locals in "
        "one non-suspending step), or route the mutation through the "
        "submit_write barrier"
    )

    def check(self, source, project):
        if not source.in_package("serve"):
            return
        graph = project.callgraph
        for fn in graph.functions_in(source):
            if not fn.is_async:
                continue
            analysis = _AtomicityAnalysis()
            run_dataflow(build_cfg(fn.node), analysis)
            for attr, read_line, write_line in sorted(analysis.races):
                yield self.finding(
                    source, _Anchor(read_line),
                    f"async {fn.display} reads self.{attr} on line "
                    f"{read_line} and writes it on line {write_line} "
                    "with an await in between — another task can "
                    f"mutate self.{attr} inside that window",
                )


# -------------------------------------------------------------- crash-ordering
_RENAME_ATTRS = {"replace", "rename"}
_MKDIR_NAMES = {"makedirs", "mkdir"}


def _is_fs_receiver(func) -> bool:
    """Whether an attribute call's receiver is a filesystem seam —
    ``os``, a :class:`StorageIO`-style object (``io`` / ``self._io``) or
    a ``Path``-ish name. Filters out ``str.replace`` and friends."""
    if not isinstance(func, ast.Attribute):
        return False
    qualifier = dotted(func.value) or ""
    tail = qualifier.rsplit(".", 1)[-1].lower()
    return tail == "os" or "io" in tail or "path" in tail


def _call_handle_arg(sub: ast.Call) -> str | None:
    """The Name of the first argument (``io.fsync(handle)`` style)."""
    if sub.args and isinstance(sub.args[0], ast.Name):
        return sub.args[0].id
    return None


def _creating_mode(sub: ast.Call) -> bool:
    """Whether an ``open`` call's mode creates a directory entry."""
    mode = None
    if len(sub.args) >= 2 and isinstance(sub.args[1], ast.Constant):
        mode = sub.args[1].value
    for kw in sub.keywords:
        if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
            mode = kw.value.value
    return isinstance(mode, str) and any(c in mode for c in "wx")


class _CrashOrderingFacts:
    """Per-function syntactic pre-pass: handle->path bindings plus the
    call sites the two dataflow passes generate/check at."""

    def __init__(self, fn_node):
        #: handle Name -> source path Name, from ``h = io.open(p, "wb")``
        self.handle_paths: dict[str, str] = {}
        for sub in walk_own(fn_node):
            call, target = None, None
            if isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Call):
                if len(sub.targets) == 1 and isinstance(sub.targets[0], ast.Name):
                    call, target = sub.value, sub.targets[0].id
            elif isinstance(sub, ast.withitem) and isinstance(
                sub.context_expr, ast.Call
            ):
                if isinstance(sub.optional_vars, ast.Name):
                    call, target = sub.context_expr, sub.optional_vars.id
            if call is None:
                continue
            func = call.func
            if not (isinstance(func, ast.Attribute) and func.attr == "open"):
                continue
            if call.args and isinstance(call.args[0], ast.Name):
                if _creating_mode(call) or "+" in str(
                    call.args[1].value if len(call.args) > 1
                    and isinstance(call.args[1], ast.Constant) else ""
                ):
                    self.handle_paths[target] = call.args[0].id


class _SyncStateAnalysis(Analysis):
    """Must-analysis: ``("synced", handle)`` after an fsync of the handle
    (killed by further writes/truncates/rebinding) and ``("snapped",)``
    after a ``write_snapshot`` call — the facts the rename and prune
    sites check."""

    mode = MUST

    def __init__(self, facts: _CrashOrderingFacts):
        self.facts = facts

    def transfer(self, node, fact):
        out = set(fact)
        for sub in node.own_nodes():
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            attr = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if attr is None:
                continue
            handle = _call_handle_arg(sub)
            receiver = (
                func.value.id
                if isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                else None
            )
            if attr == "fsync":
                for name in (handle, receiver):
                    if name in self.facts.handle_paths:
                        out.add(("synced", name))
            elif attr in ("write", "truncate"):
                for name in (handle, receiver):
                    if name is not None:
                        out.discard(("synced", name))
            elif attr == "write_snapshot":
                out.add(("snapped",))
        # Rebinding a tracked handle restarts its sync obligation.
        stmt = node.stmt
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    out.discard(("synced", target.id))
        return frozenset(out)


class _DirSyncAnalysis(Analysis):
    """May-analysis: directory-entry changes (rename, create-mode open,
    makedirs) whose ``fsync_dir`` is still owed. Facts are
    ``(kind, lineno)``; any ``fsync_dir`` call clears them all (these
    functions each operate on a single directory). Obligations reaching
    the *normal* exit are findings; exception paths are exempt — a
    failed operation has nothing to persist."""

    mode = MAY

    def transfer(self, node, fact):
        out = set(fact)
        for sub in node.own_nodes():
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            attr = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if attr == "fsync_dir":
                out.clear()
            elif (
                attr in _RENAME_ATTRS and len(sub.args) >= 2
                and _is_fs_receiver(func)
            ):
                out.add(("rename", sub.lineno))
            elif attr in _MKDIR_NAMES:
                out.add(("makedirs", sub.lineno))
            elif attr == "open" and _creating_mode(sub):
                out.add(("create", sub.lineno))
        return frozenset(out)


@register
class CrashOrderingRule(Rule):
    """ALICE-style crash-ordering discipline for the durability tier:
    fsync the file before renaming it into place, fsync the directory
    after any entry change, and never prune the WAL before the snapshot
    that covers it is on disk."""

    name = "crash-ordering"
    description = (
        "storage/ and core/ persistence paths must fsync written files "
        "before rename, fsync_dir after renames/creates/makedirs on "
        "every non-failing path, and call write_snapshot before "
        "WAL.prune — a crash between reordered steps loses acked rows"
    )
    fix_hint = (
        "follow write_snapshot's sequence: write tmp -> flush -> fsync "
        "-> replace -> fsync_dir (and checkpoint: snapshot, then prune)"
    )

    def check(self, source, project):
        if not (source.in_package("storage") or source.in_package("core")):
            return
        graph = project.callgraph
        for fn in graph.functions_in(source):
            if fn.cls and fn.cls.endswith("IO"):
                continue  # the raw syscall seam wraps one op per method
            facts = _CrashOrderingFacts(fn.node)
            calls = {site.name for site in fn.calls}
            wants_sync = bool(facts.handle_paths) and bool(
                calls & _RENAME_ATTRS
            )
            wants_prune = "prune" in calls and "write_snapshot" in calls
            wants_dirsync = bool(
                calls & (_RENAME_ATTRS | _MKDIR_NAMES | {"open"})
            )
            if not (wants_sync or wants_prune or wants_dirsync):
                continue
            cfg = build_cfg(fn.node)
            if wants_sync or wants_prune:
                result = run_dataflow(cfg, _SyncStateAnalysis(facts))
                yield from self._check_sync(
                    source, fn, cfg, facts, result, wants_prune
                )
            if wants_dirsync:
                result = run_dataflow(cfg, _DirSyncAnalysis())
                yield from self._check_dirsync(source, fn, cfg, result)

    def _check_sync(self, source, fn, cfg, facts, result, wants_prune):
        seen: set[tuple] = set()
        for node in cfg.statement_nodes():
            in_fact = result.at(node)
            for sub in node.own_nodes():
                if not isinstance(sub, ast.Call):
                    continue
                func = sub.func
                attr = func.attr if isinstance(func, ast.Attribute) else None
                if attr in _RENAME_ATTRS and _is_fs_receiver(func) and (
                    sub.args and isinstance(sub.args[0], ast.Name)
                ):
                    src_name = sub.args[0].id
                    for handle, path in facts.handle_paths.items():
                        if path != src_name:
                            continue
                        if ("synced", handle) not in in_fact:
                            key = ("sync", sub.lineno)
                            if key not in seen:
                                seen.add(key)
                                yield self.finding(
                                    source, sub,
                                    f"{fn.display} renames {src_name} "
                                    "without an fsync of the written file "
                                    "on every path — a crash can publish "
                                    "a torn file under the final name",
                                )
                elif (
                    attr == "prune" and wants_prune
                    and ("snapped",) not in in_fact
                ):
                    key = ("prune", sub.lineno)
                    if key not in seen:
                        seen.add(key)
                        yield self.finding(
                            source, sub,
                            f"{fn.display} prunes the WAL on a path where "
                            "write_snapshot has not run — the pruned rows "
                            "would survive nowhere",
                        )

    def _check_dirsync(self, source, fn, cfg, result):
        owed = result.at(cfg.exit)
        for kind, lineno in sorted(owed, key=lambda f: f[1]):
            anchor = _Anchor(lineno)
            verb = {
                "rename": "renames a file into place",
                "create": "creates a file",
                "makedirs": "creates a directory",
            }[kind]
            yield self.finding(
                source, anchor,
                f"{fn.display} {verb} but can return without fsync_dir "
                "on the parent directory — after a crash the entry "
                "itself may be missing",
            )
