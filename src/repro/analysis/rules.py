"""The project-specific invariant rules behind ``repro check``.

Each rule encodes a convention that already produced (or nearly
produced) a real bug in this codebase; ``docs/architecture.md`` lists
the history. Rules are heuristic and name-based — the goal is catching
the regression *classes* cheaply, with ``# repro: allow(<rule>)`` as the
reviewed escape hatch for deliberate exceptions.
"""

from __future__ import annotations

import ast

from repro.analysis.callgraph import dotted, walk_own
from repro.analysis.core import Rule, register


# --------------------------------------------------------------- loop-safety
@register
class LoopSafetyRule(Rule):
    """No blocking or known-heavy calls reachable from ``async def``
    bodies in ``serve/`` — callgraph-propagated, not just syntactic."""

    name = "loop-safety"
    description = (
        "async serving code must never block the event loop: no sleeps, "
        "blocking I/O, synchronous executor waits, or heavy core/* calls "
        "reachable from an async def in serve/"
    )
    fix_hint = (
        "run the blocking work via loop.run_in_executor(...) "
        "(see MutableController._run_maintenance)"
    )

    def check(self, source, project):
        if not source.in_package("serve"):
            return
        graph = project.callgraph
        for fn in graph.functions_in(source):
            if not fn.is_async:
                continue
            for block in fn.blocking:
                yield self.finding(
                    source, block,
                    f"async {fn.display} calls {block.what} on the event loop",
                )
            for site, trace in graph.blocked_call_sites(fn):
                chain = " -> ".join(trace.chain)
                yield self.finding(
                    source, site,
                    f"async {fn.display} reaches {trace.leaf} "
                    f"through the synchronous chain {chain}",
                )


# ------------------------------------------------------------- shm-lifecycle
_SHM_PRODUCER_ATTRS = {"from_table", "attach"}
_SHM_PREPARE_ATTRS = {"prepare_merge", "prepare_relayout"}
_SHM_PRODUCER_NAMES = {"ProcessBackend"}
_SHM_CLEANUP_ATTRS = {"close", "unlink", "shutdown"}


def _producer_label(node: ast.Call) -> str | None:
    """Human label when ``node`` creates shm-owning state, else None."""
    func = node.func
    if isinstance(func, ast.Name) and func.id in _SHM_PRODUCER_NAMES:
        return f"{func.id}(...)"
    if isinstance(func, ast.Attribute):
        if func.attr in _SHM_PRODUCER_ATTRS | _SHM_PREPARE_ATTRS:
            qualifier = dotted(func.value)
            return f"{qualifier}.{func.attr}" if qualifier else func.attr
        if func.attr == "run_in_executor":
            # The deferred form: run_in_executor(None, index.prepare_merge)
            # or run_in_executor(None, lambda: index.prepare_relayout(...)).
            # The executor runs the producer; the awaited result owns it.
            for arg in node.args[1:]:
                if (
                    isinstance(arg, ast.Attribute)
                    and arg.attr in _SHM_PREPARE_ATTRS | _SHM_PRODUCER_ATTRS
                ):
                    return f"run_in_executor({arg.attr})"
                if isinstance(arg, ast.Lambda):
                    for sub in ast.walk(arg):
                        if (
                            isinstance(sub, ast.Call)
                            and isinstance(sub.func, ast.Attribute)
                            and sub.func.attr
                            in _SHM_PREPARE_ATTRS | _SHM_PRODUCER_ATTRS
                        ):
                            return f"run_in_executor({sub.func.attr})"
    return None


def _parent_map(root: ast.AST) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(root):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def _binding_role(node: ast.AST, parents, fn_node):
    """How a producer call's result is used: ``("bound", name, stmt)``,
    ``("escape", ...)`` (arg / return / attribute target / ...), or
    ``("discard", ...)`` for a bare expression statement."""
    child, parent = node, parents.get(node)
    while parent is not None and parent is not fn_node:
        if isinstance(parent, ast.Call) and child is not parent.func:
            return ("escape", None, None)
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
            return ("escape", None, None)
        if isinstance(parent, ast.Assign):
            if len(parent.targets) == 1 and isinstance(parent.targets[0], ast.Name):
                return ("bound", parent.targets[0].id, parent)
            return ("escape", None, None)  # self.x = ..., a[i] = ..., tuples
        if isinstance(parent, ast.AnnAssign):
            if isinstance(parent.target, ast.Name):
                return ("bound", parent.target.id, parent)
            return ("escape", None, None)
        if isinstance(parent, ast.NamedExpr):
            if isinstance(parent.target, ast.Name):
                return ("bound", parent.target.id, parent)
            return ("escape", None, None)
        if isinstance(parent, ast.Expr):
            return ("discard", None, None)
        child, parent = parent, parents.get(parent)
    return ("escape", None, None)


def _has_general_discharge(fn_node, name: str) -> bool:
    """Whether ``name`` is retired or handed off anywhere in the function
    (nested scopes included — cleanup often lives in closures)."""
    for node in ast.walk(fn_node):
        if isinstance(node, (ast.Global, ast.Nonlocal)) and name in node.names:
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SHM_CLEANUP_ATTRS
                and isinstance(func.value, ast.Name)
                and func.value.id == name
            ):
                return True
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Name) and arg.id == name:
                    return True
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = getattr(node, "value", None)
            if value is not None and any(
                isinstance(sub, ast.Name) and sub.id == name
                for sub in ast.walk(value)
            ):
                return True
        if isinstance(node, ast.Assign):
            if any(
                isinstance(t, (ast.Attribute, ast.Subscript)) for t in node.targets
            ) and any(
                isinstance(sub, ast.Name) and sub.id == name
                for sub in ast.walk(node.value)
            ):
                return True
    return False


def _enclosing_try(stmt, parents, fn_node):
    """The innermost ``try`` whose *body* (not handlers/finally) contains
    ``stmt``, or None."""
    child, parent = stmt, parents.get(stmt)
    while parent is not None and parent is not fn_node:
        if isinstance(parent, ast.Try) and any(
            child is body_stmt for body_stmt in parent.body
        ):
            return parent
        child, parent = parent, parents.get(parent)
    return None


def _mentioned_in_error_edges(try_node: ast.Try, name: str) -> bool:
    edge_nodes = list(try_node.finalbody)
    for handler in try_node.handlers:
        edge_nodes.extend(handler.body)
    for stmt in edge_nodes:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and node.id == name:
                return True
    return False


@register
class ShmLifecycleRule(Rule):
    """Every shm-owning creation (``SharedMemoryTable.from_table`` /
    ``.attach`` / ``ProcessBackend(...)`` / ``prepare_*``) must be
    retired or handed off on all paths, including exception edges."""

    name = "shm-lifecycle"
    description = (
        "shared-memory creations must be paired with close/unlink/shutdown "
        "or explicit ownership hand-off on every path, exception edges "
        "included — POSIX segments outlive the process otherwise"
    )
    fix_hint = (
        "retire it in a finally: (close()/unlink()/shutdown()) or hand "
        "ownership off explicitly (return it / assign it to the owner)"
    )

    def check(self, source, project):
        graph = project.callgraph
        for fn in graph.functions_in(source):
            producers = [
                (node, _producer_label(node))
                for node in walk_own(fn.node)
                if isinstance(node, ast.Call) and _producer_label(node)
            ]
            if not producers:
                continue
            parents = _parent_map(fn.node)
            for node, label in producers:
                role, name, stmt = _binding_role(node, parents, fn.node)
                if role == "discard":
                    yield self.finding(
                        source, node,
                        f"result of {label} is discarded — the segments or "
                        "pool it may own can never be retired",
                    )
                    continue
                if role != "bound":
                    continue  # arg/return/attribute: ownership handed off
                if not _has_general_discharge(fn.node, name):
                    yield self.finding(
                        source, node,
                        f"{name} (from {label}) is never retired: no "
                        "close()/unlink()/shutdown() and it never escapes "
                        f"{fn.display}",
                    )
                    continue
                try_node = _enclosing_try(stmt, parents, fn.node)
                if try_node is not None and (
                    try_node.handlers or try_node.finalbody
                ):
                    if not _mentioned_in_error_edges(try_node, name):
                        yield self.finding(
                            source, node,
                            f"{name} (from {label}) is not retired on the "
                            "exception edges of the enclosing try — no "
                            "except/finally references it",
                        )


# ----------------------------------------------------- generation-discipline
@register
class GenerationDisciplineRule(Rule):
    """Result-cache keys must thread the index generation, so mutations
    invalidate cached replies by construction."""

    name = "generation-discipline"
    description = (
        "ResultCache.make_key call sites must pass generation= (or index= "
        "to derive it); cache puts must not hand-build tuple keys"
    )
    fix_hint = (
        "pass generation=index.generation (0 for an immutable index) or "
        "index=the served index"
    )

    def check(self, source, project):
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr == "make_key":
                threaded = len(node.args) >= 4 or any(
                    kw.arg in ("generation", "index") for kw in node.keywords
                )
                if not threaded:
                    yield self.finding(
                        source, node,
                        "make_key without generation=/index=: a mutation "
                        "could serve this entry stale",
                    )
            elif func.attr == "put":
                qualifier = (dotted(func.value) or "").lower()
                if "cache" in qualifier and node.args and isinstance(
                    node.args[0], ast.Tuple
                ):
                    yield self.finding(
                        source, node,
                        "hand-built cache key tuple bypasses "
                        "ResultCache.make_key (and its generation field)",
                        fix_hint="build the key with ResultCache.make_key(...)",
                        severity="warning",
                    )


# ---------------------------------------------------------------- strict-json
@register
class StrictJsonRule(Rule):
    """Wire JSON must be strict RFC 8259: no ``Infinity``/``NaN`` out
    (``allow_nan=False``) and none accepted in (``parse_constant``)."""

    name = "strict-json"
    description = (
        "serve/ must not call bare json.dumps/json.loads: outbound needs "
        "allow_nan=False, inbound needs parse_constant rejection "
        "(repro.jsonutil has both)"
    )

    def check(self, source, project):
        if not source.in_package("serve"):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "json"
            ):
                continue
            if func.attr in ("dumps", "dump"):
                allow_nan = next(
                    (kw.value for kw in node.keywords if kw.arg == "allow_nan"),
                    None,
                )
                strict = allow_nan is not None and not (
                    isinstance(allow_nan, ast.Constant) and allow_nan.value is True
                )
                if not strict:
                    yield self.finding(
                        source, node,
                        f"json.{func.attr} without allow_nan=False can emit "
                        "the non-JSON Infinity/NaN literals on the wire",
                        fix_hint="use repro.jsonutil.dumps_strict (or pass "
                        "allow_nan=False after sanitize_json)",
                    )
            elif func.attr in ("loads", "load"):
                if not any(kw.arg == "parse_constant" for kw in node.keywords):
                    yield self.finding(
                        source, node,
                        f"json.{func.attr} without parse_constant accepts "
                        "Infinity/NaN literals that are not valid JSON",
                        fix_hint="use repro.jsonutil.loads_strict (or pass "
                        "parse_constant=reject_nonfinite)",
                    )


# ----------------------------------------------------------- visitor-protocol
def _required_init_params(init_node) -> list[str]:
    args = init_node.args
    positional = list(args.posonlyargs) + list(args.args)
    required = positional[: len(positional) - len(args.defaults)]
    names = [a.arg for a in required if a.arg != "self"]
    names += [
        a.arg
        for a, default in zip(args.kwonlyargs, args.kw_defaults)
        if default is None
    ]
    return names


def _base_names(node: ast.ClassDef) -> list[str]:
    names = []
    for base in node.bases:
        name = dotted(base)
        if name:
            names.append(name.rsplit(".", 1)[-1])
    return names


def _own_methods(node: ast.ClassDef) -> dict[str, ast.AST]:
    return {
        stmt.name: stmt
        for stmt in node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _inherits_concrete(project, node: ast.ClassDef, method: str, seen=None) -> bool:
    """Whether a project-defined ancestor (other than the abstract root
    ``Visitor``, whose fresh/merge are raising stubs) defines ``method``."""
    seen = seen or set()
    for base in _base_names(node):
        if base in seen or base == "Visitor":
            continue
        seen.add(base)
        base_def = project.class_def(base)
        if base_def is None:
            continue
        if method in _own_methods(base_def):
            return True
        if _inherits_concrete(project, base_def, method, seen):
            return True
    return False


@register
class VisitorProtocolRule(Rule):
    """Visitor subclasses claiming mergeability must implement the whole
    ``fresh``/``merge``/``reset`` protocol with dtype-preserving math."""

    name = "visitor-protocol"
    description = (
        "a Visitor defining fresh or merge must define both (is_mergeable "
        "checks both); mergeable visitors with required __init__ args must "
        "override fresh and reset; aggregates must stay dtype-preserving"
    )

    def check(self, source, project):
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(base.endswith("Visitor") for base in _base_names(node)):
                continue
            methods = _own_methods(node)
            effective = {
                m: m in methods or _inherits_concrete(project, node, m)
                for m in ("fresh", "merge")
            }
            if effective["fresh"] != effective["merge"]:
                present = "fresh" if effective["fresh"] else "merge"
                missing = "merge" if effective["fresh"] else "fresh"
                yield self.finding(
                    source, node,
                    f"{node.name} has {present} but not {missing}: "
                    "is_mergeable stays False and backends silently fall "
                    "back to recording/replay",
                    fix_hint=f"implement {missing} (or drop {present})",
                )
            elif effective["fresh"]:
                init = methods.get("__init__")
                required = _required_init_params(init) if init else []
                if required:
                    if "reset" not in methods:
                        yield self.finding(
                            source, node,
                            f"mergeable {node.name} takes required __init__ "
                            f"args {required} but does not override reset() "
                            "— the default reset() cannot re-invoke its "
                            "__init__",
                            fix_hint="override reset() to restore initial state",
                        )
                    if "fresh" not in methods:
                        yield self.finding(
                            source, node,
                            f"mergeable {node.name} takes required __init__ "
                            f"args {required} but inherits fresh() — "
                            "type(self)() cannot construct it",
                            fix_hint="override fresh() to pass the config through",
                        )
            for method_name in ("visit", "merge"):
                body = methods.get(method_name)
                if body is None:
                    continue
                for sub in ast.walk(body):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id in ("int", "float")
                        and len(sub.args) == 1
                        and isinstance(sub.args[0], ast.Call)
                        and isinstance(sub.args[0].func, ast.Attribute)
                        and sub.args[0].func.attr in ("sum", "min", "max")
                    ):
                        yield self.finding(
                            source, sub,
                            f"{node.name}.{method_name} forces the aggregate "
                            f"through {sub.func.id}(...), truncating float "
                            "columns",
                            fix_hint="use .item() — it preserves the column dtype",
                            severity="warning",
                        )


# -------------------------------------------------------------- write-barrier
@register
class WriteBarrierRule(Rule):
    """Index mutations in async serving code must flow through the
    batcher's write barrier, never run inline on the loop."""

    name = "write-barrier"
    description = (
        "async serve/ code must not call insert/insert_many/commit_merge "
        "or poke .generation directly; wrap the mutation in a closure and "
        "submit it via MicroBatcher.submit_write"
    )
    fix_hint = (
        "wrap the mutation in a def write(): ... closure and "
        "await batcher.submit_write(write)"
    )

    _MUTATORS = {"insert", "insert_many", "commit_merge"}

    def check(self, source, project):
        if not source.in_package("serve"):
            return
        graph = project.callgraph
        for fn in graph.functions_in(source):
            if not fn.is_async:
                continue
            for site in fn.calls:
                if site.name not in self._MUTATORS or site.qualifier is None:
                    continue
                if "batcher" in site.qualifier:
                    continue  # the barrier itself
                yield self.finding(
                    source, site,
                    f"async {fn.display} calls .{site.name}() inline — the "
                    "mutation races in-flight micro-batches on executor "
                    "threads",
                )
            for node in walk_own(fn.node):
                targets = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, ast.AugAssign):
                    targets = [node.target]
                for target in targets:
                    if isinstance(target, ast.Attribute) and target.attr == "generation":
                        yield self.finding(
                            source, node,
                            f"async {fn.display} mutates .generation "
                            "directly; generations only move through the "
                            "index's own mutation methods",
                        )


# ------------------------------------------------------------- durability-ack
@register
class DurabilityAckRule(Rule):
    """An insert's wire ack must come *after* the write that logs it —
    a client holding an ack for a row the WAL never saw is exactly the
    data loss the durability tier exists to rule out."""

    name = "durability-ack"
    description = (
        "async serve/ code must not send a reply before the insert "
        "mutation (WAL append + buffer apply) on the same path: apply "
        "the write first, ack second"
    )
    fix_hint = (
        "move the send after the awaited mutation (see "
        "FloodServer._handle_write: the reply is built from "
        "apply_insert's result, which resolves only after the write "
        "closure — WAL append included — ran)"
    )

    #: Wire-ack emitters: raw socket sends, and the StreamWriter pair.
    _SENDERS = {"send", "sendall"}
    _WRITER_SENDERS = {"write", "drain"}
    #: Calls that (transitively) perform the logged mutation.
    _MUTATORS = {"insert", "insert_many", "apply_insert", "submit_write"}

    def _is_sender(self, site) -> bool:
        if site.name in self._SENDERS:
            return True
        # `writer.write(...)` / `writer.drain()` — but not e.g. a WAL's
        # `self.write(...)` or a file handle's: require a writer-ish
        # receiver so the storage layer's own writes never match.
        return (
            site.name in self._WRITER_SENDERS
            and site.qualifier is not None
            and "writer" in site.qualifier
        )

    def check(self, source, project):
        if not source.in_package("serve"):
            return
        graph = project.callgraph
        for fn in graph.functions_in(source):
            if not fn.is_async:
                continue
            senders = [s for s in fn.calls if self._is_sender(s)]
            mutators = [s for s in fn.calls if s.name in self._MUTATORS]
            if not senders or not mutators:
                continue
            for ack in senders:
                before = [
                    mut
                    for mut in mutators
                    if (ack.lineno, ack.col_offset)
                    < (mut.lineno, mut.col_offset)
                    # `await send(await apply_insert(...))` evaluates the
                    # mutation first even though the send's position is
                    # earlier — a nested mutator is not ack-before-log.
                    and not any(n is mut.node for n in ast.walk(ack.node))
                ]
                if before:
                    mut = before[0]
                    yield self.finding(
                        source, ack,
                        f"async {fn.display} sends a reply before the "
                        f".{mut.name}() on line {mut.lineno} — an ack must "
                        "never precede the write (WAL append) it "
                        "acknowledges",
                    )
