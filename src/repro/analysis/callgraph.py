"""Project symbol table + call graph for the reachability rules.

The loop-safety rule needs more than syntax: ``async def`` serving code
is allowed to *mention* ``index.prepare_merge`` (as a
``run_in_executor`` argument) but not to *reach* it through a chain of
synchronous calls. This module builds the per-function facts that make
that distinction checkable:

- every function/method (including nested defs) with its **own** calls
  and blocking sites — nested ``def``\\ s and ``lambda``\\ s are deferred
  execution, so their bodies are attributed to themselves, never to the
  enclosing function;
- name-based call resolution: ``self.x(...)`` resolves within the
  enclosing class only (so ``AsyncFloodClient._roundtrip`` never aliases
  the blocking ``FloodClient._roundtrip``), plain names resolve to
  module-level functions or class constructors, and attribute calls on
  other receivers resolve to any project function of that name;
- transitive blocking traces (:meth:`CallGraph.first_block`) with the
  call chain preserved, so a finding can say *how* an async handler
  reaches ``time.sleep``.

Blocking facts are heuristic and name-based by design — this is a
project linter, not a type checker; the false-positive escape hatch is
``# repro: allow(loop-safety)``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

#: ``qualifier.attr`` calls that block the calling thread outright.
BLOCKING_CALLS = {
    ("time", "sleep"): "time.sleep",
    ("socket", "create_connection"): "socket.create_connection (blocking connect)",
    ("subprocess", "run"): "subprocess.run",
    ("subprocess", "check_output"): "subprocess.check_output",
    ("socket", "socket"): "socket.socket (blocking socket I/O)",
}

#: Known-heavy project calls (index rebuilds, layout optimization, raw
#: scans): CPU-bound for seconds at bench scale — never on the loop.
HEAVY_CALLS = {
    "prepare_merge": "prepare_merge (clustered rebuild)",
    "prepare_relayout": "prepare_relayout (layout learn + rebuild)",
    "find_optimal_layout": "find_optimal_layout (layout search)",
    "build_flood": "build_flood (index build)",
    "query_percell": "query_percell (per-cell scan loop)",
    "default_cost_model": "default_cost_model (may calibrate for seconds)",
    "warmup_kernels": "warmup_kernels (first-call JIT compile)",
    "flush_group_commit": "GroupCommitLog.flush_group_commit "
    "(blocks for the in-flight fsync batch)",
}

#: Heavy calls identified by their receiver chain, for names too generic
#: to match globally (``.run`` alone would alias ``run_in_executor``).
HEAVY_QUALIFIED = {
    ("engine", "run"): "BatchQueryEngine.run (batch scan on the loop)",
}


def dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_own(node: ast.AST):
    """Yield ``node``'s descendants, stopping at nested function/class
    scopes and lambdas (deferred execution belongs to its own scope)."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


@dataclass
class CallSite:
    """One call made directly by a function (deferred scopes excluded)."""

    name: str              #: simple callee name (``submit_write``)
    qualifier: str | None  #: ``None`` = bare name; ``"self"``; else receiver chain
    lineno: int
    col_offset: int
    node: ast.Call


@dataclass
class BlockSite:
    """A syntactically blocking call (see ``BLOCKING_CALLS``/``HEAVY_CALLS``)."""

    what: str
    lineno: int
    col_offset: int


@dataclass
class FunctionInfo:
    """One function/method with its own (non-deferred) calls and blocks."""

    name: str
    qualname: str
    cls: str | None
    source: object  # SourceFile
    node: ast.AST
    is_async: bool
    parent: "FunctionInfo | None" = None
    calls: list[CallSite] = field(default_factory=list)
    blocking: list[BlockSite] = field(default_factory=list)
    children: "list[FunctionInfo]" = field(default_factory=list)

    @property
    def is_nested(self) -> bool:
        """Closures are only callable from their enclosing scope — they
        must never resolve a ``.name(...)`` call made elsewhere."""
        return self.parent is not None

    @property
    def display(self) -> str:
        return f"{self.cls}.{self.name}" if self.cls else self.name


@dataclass
class Trace:
    """How a function reaches a blocking call: chain of displays + leaf."""

    chain: list[str]
    leaf: str


def _classify_call(node: ast.Call) -> tuple[CallSite | None, BlockSite | None]:
    """The (call site, blocking site) facts of one Call node."""
    func = node.func
    site = None
    block = None
    if isinstance(func, ast.Name):
        site = CallSite(func.id, None, node.lineno, node.col_offset, node)
        if func.id == "open":
            block = BlockSite("open() (blocking file I/O)", node.lineno, node.col_offset)
        elif func.id in HEAVY_CALLS:
            # Module-level heavies (warmup_kernels, build_flood, ...) are
            # usually called bare, not through a receiver.
            block = BlockSite(HEAVY_CALLS[func.id], node.lineno, node.col_offset)
    elif isinstance(func, ast.Attribute):
        qualifier = dotted(func.value) or "<expr>"
        site = CallSite(func.attr, qualifier, node.lineno, node.col_offset, node)
        tail = qualifier.rsplit(".", 1)[-1]
        if (tail, func.attr) in BLOCKING_CALLS:
            block = BlockSite(
                BLOCKING_CALLS[(tail, func.attr)], node.lineno, node.col_offset
            )
        elif (tail, func.attr) in HEAVY_QUALIFIED:
            block = BlockSite(
                HEAVY_QUALIFIED[(tail, func.attr)], node.lineno, node.col_offset
            )
        elif func.attr in HEAVY_CALLS:
            block = BlockSite(HEAVY_CALLS[func.attr], node.lineno, node.col_offset)
        elif func.attr == "result" and isinstance(func.value, ast.Call):
            inner = func.value.func
            if isinstance(inner, ast.Attribute) and inner.attr == "submit":
                block = BlockSite(
                    "submit(...).result() (synchronous wait on an executor)",
                    node.lineno, node.col_offset,
                )
    return site, block


class _Collector(ast.NodeVisitor):
    """Walk one module, building FunctionInfos with innermost attribution."""

    def __init__(self, source, graph: "CallGraph"):
        self.source = source
        self.graph = graph
        self.class_stack: list[str] = []
        self.func_stack: list[FunctionInfo] = []
        self.lambda_depth = 0

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.graph.classes.setdefault(node.name, node)
        self.graph.class_sources.setdefault(node.name, self.source)
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()

    def _visit_function(self, node, is_async: bool) -> None:
        scope = [info.name for info in self.func_stack]
        qualname = "::".join(
            [self.source.path, ".".join(self.class_stack + scope + [node.name])]
        )
        info = FunctionInfo(
            name=node.name,
            qualname=qualname,
            cls=self.class_stack[-1] if self.class_stack else None,
            source=self.source,
            node=node,
            is_async=is_async,
            parent=self.func_stack[-1] if self.func_stack else None,
        )
        self.graph.add(info)
        self.func_stack.append(info)
        self.generic_visit(node)
        self.func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, is_async=False)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, is_async=True)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # Deferred execution: nothing inside a lambda runs at this point
        # in the enclosing function, so none of its calls belong here.
        self.lambda_depth += 1
        self.generic_visit(node)
        self.lambda_depth -= 1

    def visit_Call(self, node: ast.Call) -> None:
        if self.func_stack and self.lambda_depth == 0:
            site, block = _classify_call(node)
            info = self.func_stack[-1]
            if site is not None:
                info.calls.append(site)
            if block is not None:
                info.blocking.append(block)
        self.generic_visit(node)


class CallGraph:
    """Name-resolved project call graph with blocking propagation."""

    def __init__(self, sources):
        self.functions: list[FunctionInfo] = []
        self.classes: dict[str, ast.ClassDef] = {}
        self.class_sources: dict[str, object] = {}
        self._by_name: dict[str, list[FunctionInfo]] = {}
        self._by_method: dict[tuple[str, str], list[FunctionInfo]] = {}
        self._by_source: dict[str, list[FunctionInfo]] = {}
        for source in sources:
            _Collector(source, self).visit(source.tree)
        self._block_memo: dict[int, Trace | None] = {}

    def add(self, info: FunctionInfo) -> None:
        self.functions.append(info)
        if info.parent is not None:
            info.parent.children.append(info)
        else:
            self._by_name.setdefault(info.name, []).append(info)
            if info.cls:
                self._by_method.setdefault((info.cls, info.name), []).append(info)
        self._by_source.setdefault(info.source.path, []).append(info)

    def functions_in(self, source) -> list[FunctionInfo]:
        return self._by_source.get(source.path, [])

    def resolve(self, site: CallSite, caller: FunctionInfo) -> list[FunctionInfo]:
        """Candidate callees for one call site (name-based, class-aware)."""
        if site.qualifier == "self" and caller.cls:
            # Within the enclosing class only: two classes sharing a
            # method name (sync FloodClient / AsyncFloodClient) must not
            # alias each other through self-calls.
            return self._by_method.get((caller.cls, site.name), [])
        if site.qualifier is None:
            # A sibling closure called by name runs right here, inline.
            siblings = [fn for fn in caller.children if fn.name == site.name]
            if siblings:
                return siblings
            module_level = [
                fn for fn in self._by_name.get(site.name, []) if fn.cls is None
            ]
            if module_level:
                return module_level
            # A bare-name call matching a project class is a construction.
            if site.name in self.classes:
                return self._by_method.get((site.name, "__init__"), [])
            return []
        return self._by_name.get(site.name, [])

    def first_block(self, fn: FunctionInfo, _stack: set[int] | None = None) -> Trace | None:
        """The first blocking call reachable from ``fn`` (memoized DFS;
        cycles are treated as non-blocking on that path)."""
        key = id(fn)
        if key in self._block_memo:
            return self._block_memo[key]
        stack = _stack or set()
        if key in stack:
            return None
        stack = stack | {key}
        trace: Trace | None = None
        if fn.blocking:
            block = fn.blocking[0]
            trace = Trace(chain=[fn.display], leaf=block.what)
        else:
            for site in fn.calls:
                for callee in self.resolve(site, fn):
                    sub = self.first_block(callee, stack)
                    if sub is not None:
                        trace = Trace(chain=[fn.display] + sub.chain, leaf=sub.leaf)
                        break
                if trace is not None:
                    break
        self._block_memo[key] = trace
        return trace

    def blocked_call_sites(self, fn: FunctionInfo):
        """``(site, trace)`` for each of ``fn``'s calls into a *sync*
        callee that transitively blocks. Async callees are excluded —
        they are reported as roots of their own (awaiting an async
        function yields at every await; the blocking segment is inside
        it, which is where the finding should point)."""
        for site in fn.calls:
            for callee in self.resolve(site, fn):
                if callee.is_async:
                    continue
                trace = self.first_block(callee)
                if trace is not None:
                    yield site, Trace(chain=[fn.display] + trace.chain, leaf=trace.leaf)
                    break
