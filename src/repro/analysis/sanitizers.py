"""Runtime sanitizers: the dynamic half of ``repro check``.

Static rules catch the patterns they know; these catch the rest at test
time, cheaply enough to leave on:

- :class:`LoopStallSanitizer` instruments the asyncio event loop and
  records every callback that held it longer than a stall budget — so
  every existing ``tests/serve`` scenario doubles as a
  blocked-event-loop detector (wired in via an autouse fixture in
  ``tests/serve/conftest.py``; ``REPRO_LOOP_STALL_BUDGET=0`` disables).
- :class:`ShmLeakSanitizer` asserts shared-memory segment *balance*
  across a block: whatever the block creates it must also retire,
  replacing hand-rolled before/after ``owned_segment_names()``
  comparisons in the leak tests.
- :class:`ChaosEventLoop` is the runtime confirmer for the
  ``await-atomicity`` rule: a seeded, reproducible event loop that
  randomizes the wakeup order of *ready* tasks, so any interleaving the
  static rule reasons about is one the test suite can actually hit.
  Armed for ``tests/serve`` via ``REPRO_CHAOS_SEED`` (see the autouse
  fixture in ``tests/serve/conftest.py``).
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass


@dataclass(frozen=True)
class LoopStall:
    """One event-loop callback that exceeded the stall budget."""

    callback: str
    seconds: float

    def render(self) -> str:
        return f"{self.seconds * 1e3:.1f} ms on the loop: {self.callback}"


def _describe_handle(handle) -> str:
    callback = getattr(handle, "_callback", None)
    return repr(callback if callback is not None else handle)[:200]


class LoopStallSanitizer:
    """Record asyncio callbacks that hold the event loop past ``budget``.

    While active, ``asyncio.events.Handle._run`` (the single choke point
    every loop callback — task steps included — goes through) is wrapped
    with a timer. Use as a context manager around ``asyncio.run(...)``;
    call :meth:`assert_clean` afterwards. Nesting is safe (the inner
    instance restores whatever the outer installed).

    Parameters
    ----------
    budget:
        Seconds one callback may hold the loop before it is recorded as
        a stall. Callbacks run between awaits, so this bounds the
        longest await-free segment the serving code may execute.
    """

    def __init__(self, budget: float = 0.25):
        if budget <= 0:
            raise ValueError(f"stall budget must be > 0, got {budget}")
        self.budget = float(budget)
        self.stalls: list[LoopStall] = []
        self._original = None

    def __enter__(self) -> "LoopStallSanitizer":
        import asyncio.events as events

        original = events.Handle._run
        budget = self.budget
        stalls = self.stalls

        def timed_run(handle):
            start = time.perf_counter()
            try:
                return original(handle)
            finally:
                elapsed = time.perf_counter() - start
                if elapsed >= budget:
                    stalls.append(LoopStall(_describe_handle(handle), elapsed))

        self._original = original
        events.Handle._run = timed_run
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        import asyncio.events as events

        events.Handle._run = self._original
        self._original = None
        return False

    def assert_clean(self) -> None:
        """Raise ``AssertionError`` listing every recorded stall."""
        if self.stalls:
            details = "\n  ".join(stall.render() for stall in self.stalls)
            raise AssertionError(
                f"event loop stalled {len(self.stalls)} time(s) beyond "
                f"{self.budget * 1e3:.0f} ms:\n  {details}\n"
                "(move the work to loop.run_in_executor, or raise "
                "REPRO_LOOP_STALL_BUDGET if the budget is too tight here)"
            )


class ShmLeakError(AssertionError):
    """A block exited still owning shared-memory segments it created."""

    def __init__(self, leaked):
        self.leaked = list(leaked)
        super().__init__(
            f"{len(self.leaked)} shared-memory segment(s) created inside "
            f"the sanitized block were never retired: {self.leaked} "
            "(pair every from_table/attach/ProcessBackend with "
            "unlink/shutdown — see the resource-release rule)"
        )


class ShmLeakSanitizer:
    """Assert shared-memory segment balance across a ``with`` block.

    On exit, any segment created inside the block and still owned raises
    :class:`ShmLeakError`. :meth:`created` exposes the in-flight delta so
    tests can also assert that segments *did* exist while in use. If the
    block raises, the original exception propagates unmasked.
    """

    def __enter__(self) -> "ShmLeakSanitizer":
        from repro.storage.shm import owned_segment_names

        self._baseline = set(owned_segment_names())
        return self

    def created(self) -> list[str]:
        """Segments created since entry and still owned, sorted."""
        from repro.storage.shm import owned_segment_names

        return sorted(set(owned_segment_names()) - self._baseline)

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            return False  # never mask the block's own failure
        leaked = self.created()
        if leaked:
            raise ShmLeakError(leaked)
        return False


def shm_leak_sanitizer() -> ShmLeakSanitizer:
    """Factory alias reading naturally at ``with`` sites."""
    return ShmLeakSanitizer()


class ChaosEventLoop(asyncio.SelectorEventLoop):
    """A seeded event loop that randomizes ready-task wakeup order.

    A stock asyncio loop runs ready callbacks in FIFO order, so a test
    suite only ever exercises *one* interleaving of its coroutines — the
    polite one. The races the ``await-atomicity`` rule reasons about
    (read before an ``await``, write after, another task mutating the
    state inside the window) stay latent because the adversarial
    schedule never happens to run.

    This loop intercepts task-step wakeups (``Task.__step`` /
    ``Task.__wakeup`` — the callbacks asyncio binds to a Task object)
    and releases them one at a time in an order drawn from a seeded
    :class:`random.Random`. Everything else — I/O callbacks, timers,
    ``call_soon_threadsafe`` from executor threads — keeps its normal
    ordering, so the loop stays a *valid* asyncio scheduler: it only
    explores orderings asyncio itself is allowed to produce.

    Same seed, same workload -> same schedule, so a failure found under
    chaos is reproducible by exporting ``REPRO_CHAOS_SEED=<seed>``.
    """

    #: Chance a pump defers its wakeup to the back of the queue, and how
    #: many times one wakeup may be deferred (bounds starvation: every
    #: buffered wakeup runs after at most _CHAOS_MAX_DEFERS requeues).
    _CHAOS_DEFER_P = 0.5
    _CHAOS_MAX_DEFERS = 8

    def __init__(self, seed: int = 0):
        super().__init__()
        self._chaos_rng = random.Random(seed)
        self._chaos_pending: list[tuple[int, asyncio.Handle, int]] = []
        self._chaos_seq = 0

    @staticmethod
    def _is_task_step(callback) -> bool:
        return isinstance(getattr(callback, "__self__", None), asyncio.Task)

    def call_soon(self, callback, *args, context=None):
        if not self._is_task_step(callback):
            return super().call_soon(callback, *args, context=context)
        # Buffer the task wakeup; returning the real Handle keeps
        # cancel() working.
        handle = asyncio.Handle(callback, args, self, context)
        self._chaos_buffer(handle, self._CHAOS_MAX_DEFERS)
        return handle

    def _chaos_buffer(self, handle: asyncio.Handle, defers_left: int) -> None:
        self._chaos_seq += 1
        self._chaos_pending.append((self._chaos_seq, handle, defers_left))
        super().call_soon(self._chaos_pump, self._chaos_seq)

    def _chaos_pump(self, threshold: int) -> None:
        # Delay-only reordering. A pump may run any wakeup buffered at or
        # before its own scheduling point (seq <= threshold), never a
        # later one: advancing a wakeup past plain callbacks queued ahead
        # of it would be a schedule no stock loop can produce, and
        # asyncio's own internals rely on that FIFO (e.g. sock_connect
        # unregisters its connect-writer via call_soon *before* the
        # awaiting task resumes and wraps the fd in a transport). The
        # shuffling comes from *deferral*: instead of running the chosen
        # wakeup, a coin flip may requeue it behind everything currently
        # scheduled, letting later wakeups overtake it.
        pending = self._chaos_pending
        eligible = [i for i, entry in enumerate(pending) if entry[0] <= threshold]
        if not eligible:
            return
        index = eligible[self._chaos_rng.randrange(len(eligible))]
        _, handle, defers_left = pending.pop(index)
        if handle.cancelled():
            return
        if defers_left > 0 and self._chaos_rng.random() < self._CHAOS_DEFER_P:
            self._chaos_buffer(handle, defers_left - 1)
            return
        handle._run()


class ChaosEventLoopPolicy(asyncio.DefaultEventLoopPolicy):
    """Policy whose every new loop is a :class:`ChaosEventLoop`.

    Install around a test run so plain ``asyncio.run(...)`` call sites
    pick up chaos scheduling unchanged::

        asyncio.set_event_loop_policy(ChaosEventLoopPolicy(seed=1))

    Each new loop reseeds from the base seed and a per-loop counter, so
    successive ``asyncio.run`` calls in one process get distinct but
    still reproducible schedules.
    """

    def __init__(self, seed: int = 0):
        super().__init__()
        self.seed = int(seed)
        self._loops_created = 0

    def new_event_loop(self):
        loop = ChaosEventLoop(seed=self.seed + self._loops_created)
        self._loops_created += 1
        return loop
