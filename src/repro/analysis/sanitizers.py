"""Runtime sanitizers: the dynamic half of ``repro check``.

Static rules catch the patterns they know; these catch the rest at test
time, cheaply enough to leave on:

- :class:`LoopStallSanitizer` instruments the asyncio event loop and
  records every callback that held it longer than a stall budget — so
  every existing ``tests/serve`` scenario doubles as a
  blocked-event-loop detector (wired in via an autouse fixture in
  ``tests/serve/conftest.py``; ``REPRO_LOOP_STALL_BUDGET=0`` disables).
- :class:`ShmLeakSanitizer` asserts shared-memory segment *balance*
  across a block: whatever the block creates it must also retire,
  replacing hand-rolled before/after ``owned_segment_names()``
  comparisons in the leak tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass(frozen=True)
class LoopStall:
    """One event-loop callback that exceeded the stall budget."""

    callback: str
    seconds: float

    def render(self) -> str:
        return f"{self.seconds * 1e3:.1f} ms on the loop: {self.callback}"


def _describe_handle(handle) -> str:
    callback = getattr(handle, "_callback", None)
    return repr(callback if callback is not None else handle)[:200]


class LoopStallSanitizer:
    """Record asyncio callbacks that hold the event loop past ``budget``.

    While active, ``asyncio.events.Handle._run`` (the single choke point
    every loop callback — task steps included — goes through) is wrapped
    with a timer. Use as a context manager around ``asyncio.run(...)``;
    call :meth:`assert_clean` afterwards. Nesting is safe (the inner
    instance restores whatever the outer installed).

    Parameters
    ----------
    budget:
        Seconds one callback may hold the loop before it is recorded as
        a stall. Callbacks run between awaits, so this bounds the
        longest await-free segment the serving code may execute.
    """

    def __init__(self, budget: float = 0.25):
        if budget <= 0:
            raise ValueError(f"stall budget must be > 0, got {budget}")
        self.budget = float(budget)
        self.stalls: list[LoopStall] = []
        self._original = None

    def __enter__(self) -> "LoopStallSanitizer":
        import asyncio.events as events

        original = events.Handle._run
        budget = self.budget
        stalls = self.stalls

        def timed_run(handle):
            start = time.perf_counter()
            try:
                return original(handle)
            finally:
                elapsed = time.perf_counter() - start
                if elapsed >= budget:
                    stalls.append(LoopStall(_describe_handle(handle), elapsed))

        self._original = original
        events.Handle._run = timed_run
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        import asyncio.events as events

        events.Handle._run = self._original
        self._original = None
        return False

    def assert_clean(self) -> None:
        """Raise ``AssertionError`` listing every recorded stall."""
        if self.stalls:
            details = "\n  ".join(stall.render() for stall in self.stalls)
            raise AssertionError(
                f"event loop stalled {len(self.stalls)} time(s) beyond "
                f"{self.budget * 1e3:.0f} ms:\n  {details}\n"
                "(move the work to loop.run_in_executor, or raise "
                "REPRO_LOOP_STALL_BUDGET if the budget is too tight here)"
            )


class ShmLeakError(AssertionError):
    """A block exited still owning shared-memory segments it created."""

    def __init__(self, leaked):
        self.leaked = list(leaked)
        super().__init__(
            f"{len(self.leaked)} shared-memory segment(s) created inside "
            f"the sanitized block were never retired: {self.leaked} "
            "(pair every from_table/attach/ProcessBackend with "
            "unlink/shutdown — see the shm-lifecycle rule)"
        )


class ShmLeakSanitizer:
    """Assert shared-memory segment balance across a ``with`` block.

    On exit, any segment created inside the block and still owned raises
    :class:`ShmLeakError`. :meth:`created` exposes the in-flight delta so
    tests can also assert that segments *did* exist while in use. If the
    block raises, the original exception propagates unmasked.
    """

    def __enter__(self) -> "ShmLeakSanitizer":
        from repro.storage.shm import owned_segment_names

        self._baseline = set(owned_segment_names())
        return self

    def created(self) -> list[str]:
        """Segments created since entry and still owned, sorted."""
        from repro.storage.shm import owned_segment_names

        return sorted(set(owned_segment_names()) - self._baseline)

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            return False  # never mask the block's own failure
        leaked = self.created()
        if leaked:
            raise ShmLeakError(leaked)
        return False


def shm_leak_sanitizer() -> ShmLeakSanitizer:
    """Factory alias reading naturally at ``with`` sites."""
    return ShmLeakSanitizer()
