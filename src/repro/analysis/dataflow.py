"""Worklist dataflow over :mod:`repro.analysis.cfg` graphs.

A small forward framework, just enough for the three path-sensitive rule
families:

- **may** analyses (join = union): "does an unreleased resource / an
  un-synced rename *possibly* reach this point on some path" — used by
  resource-release and the dir-fsync obligation.
- **must** analyses (join = intersection): "has ``fsync`` *definitely*
  run on every path before this rename" — used by fsync-before-rename
  and snapshot-before-prune.

Facts are ``frozenset`` instances. Transfer functions may return either
one fact (same state continues on normal and exception edges) or a
``(normal, exception)`` pair when the two routes differ — e.g. a
discharge call that may itself raise discharges only on its normal exit.

Unreached predecessors contribute nothing: in-facts start as ``None``
("bottom"), and :func:`run` joins only computed predecessor facts, so
intersection joins are not poisoned by paths that cannot execute.
"""

from __future__ import annotations

import ast
from repro.analysis.cfg import CFG, EXCEPTION, NORMAL, Node

MAY = "may"
MUST = "must"


class Analysis:
    """One forward dataflow problem. Subclasses set :attr:`mode` and
    implement :meth:`initial` and :meth:`transfer`."""

    mode: str = MAY

    def initial(self) -> frozenset:
        """The fact at function entry."""
        return frozenset()

    def transfer(self, node: Node, fact: frozenset):
        """``fact`` flowing *into* ``node`` -> fact(s) flowing out.

        Return a single frozenset, or ``(normal_fact, exception_fact)``.
        """
        raise NotImplementedError

    def join(self, facts: list[frozenset]) -> frozenset:
        if not facts:
            return frozenset()
        if self.mode == MAY:
            out = facts[0]
            for fact in facts[1:]:
                out = out | fact
            return out
        out = facts[0]
        for fact in facts[1:]:
            out = out & fact
        return out


class Result:
    """Per-node in/out facts after :func:`run` converges."""

    def __init__(self):
        self.in_facts: dict[int, frozenset] = {}
        self.out_normal: dict[int, frozenset] = {}
        self.out_exception: dict[int, frozenset] = {}

    def at(self, node: Node) -> frozenset:
        """The fact flowing into ``node`` (empty when unreachable)."""
        return self.in_facts.get(node.index, frozenset())


def run(cfg: CFG, analysis: Analysis) -> Result:
    """Iterate ``analysis`` over ``cfg`` to a fixed point (worklist)."""
    result = Result()
    result.in_facts[cfg.entry.index] = analysis.initial()

    worklist: list[Node] = [cfg.entry]
    queued = {cfg.entry.index}
    while worklist:
        node = worklist.pop(0)
        queued.discard(node.index)

        if node is not cfg.entry:
            incoming: list[frozenset] = []
            for pred, kind in node.preds:
                table = (
                    result.out_exception if kind == EXCEPTION
                    else result.out_normal
                )
                fact = table.get(pred.index)
                if fact is not None:
                    incoming.append(fact)
            if not incoming:
                continue  # not yet reachable
            in_fact = analysis.join(incoming)
            if result.in_facts.get(node.index) == in_fact:
                # Converged for this node — but only skip recomputation
                # if outputs exist (first visit must still transfer).
                if node.index in result.out_normal:
                    continue
            result.in_facts[node.index] = in_fact
        in_fact = result.in_facts[node.index]

        out = analysis.transfer(node, in_fact)
        if isinstance(out, tuple):
            normal_out, exc_out = out
        else:
            normal_out = exc_out = out
        changed = (
            result.out_normal.get(node.index) != normal_out
            or result.out_exception.get(node.index) != exc_out
        )
        result.out_normal[node.index] = normal_out
        result.out_exception[node.index] = exc_out
        if changed:
            for succ, _kind in node.succs:
                if succ.index not in queued:
                    worklist.append(succ)
                    queued.add(succ.index)
    return result


# ---------------------------------------------------------------------------
# Stock analyses


class ReachingDefinitions(Analysis):
    """Which ``(name, lineno)`` assignments may reach each node.

    Classic may-analysis over simple-name targets; used by the framework
    tests and as the template the rule-specific analyses follow.
    """

    mode = MAY

    def transfer(self, node: Node, fact: frozenset):
        defs = self.defs_at(node)
        if not defs:
            return fact
        killed = {name for name, _ in defs}
        out = frozenset(
            (name, line) for name, line in fact if name not in killed
        )
        return out | defs

    @staticmethod
    def defs_at(node: Node) -> frozenset:
        stmt = node.stmt
        names: set[str] = set()
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                names.update(_simple_names(target))
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            names.update(_simple_names(stmt.target))
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            names.update(_simple_names(stmt.target))
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    names.update(_simple_names(item.optional_vars))
        if not names:
            return frozenset()
        return frozenset((name, node.lineno) for name in names)


def _simple_names(target: ast.expr) -> set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        out: set[str] = set()
        for elt in target.elts:
            out |= _simple_names(elt)
        return out
    if isinstance(target, ast.Starred):
        return _simple_names(target.value)
    return set()


class SuspensionCrossing(Analysis):
    """Which facts survive across a suspension point.

    Facts are ``(tag, payload, crossed)`` triples. Each node's transfer
    runs in three phases: :meth:`gen` adds facts produced *before* any
    suspension in the statement (e.g. attribute reads), then every live
    fact is marked ``crossed=True`` if the node suspends, then
    :meth:`use` consumes facts *after* the suspension (e.g. attribute
    writes) — so ``self.x = await f(self.x)`` correctly sees its own
    read as having crossed the await.
    """

    mode = MAY

    def gen(self, node: Node, fact: frozenset) -> frozenset:
        """Facts produced at ``node``, pre-suspension."""
        return fact

    def use(self, node: Node, fact: frozenset) -> frozenset:
        """Facts consumed/killed at ``node``, post-suspension. The
        ``crossed`` flag on each fact is authoritative here."""
        return fact

    def transfer(self, node: Node, fact: frozenset):
        fact = self.gen(node, fact)
        if node.is_suspension:
            fact = frozenset((tag, payload, True) for tag, payload, _ in fact)
        return self.use(node, fact)
