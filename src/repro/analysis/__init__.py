"""repro's self-checks: static invariant rules (``repro check``) plus
runtime sanitizers for the serving stack.

Static side: :mod:`repro.analysis.core` (findings, suppressions, rule
registry), :mod:`repro.analysis.callgraph` (symbol table + blocking
propagation), :mod:`repro.analysis.rules` (the project rules), and
:mod:`repro.analysis.runner` (path walking, text/JSON rendering, exit
codes). Dynamic side: :mod:`repro.analysis.sanitizers`.
"""

from repro.analysis.core import (
    Finding,
    Project,
    Rule,
    SourceFile,
    all_rules,
    register,
)
from repro.analysis.runner import CheckReport, main_check, run_check

__all__ = [
    "CheckReport",
    "Finding",
    "Project",
    "Rule",
    "SourceFile",
    "all_rules",
    "main_check",
    "register",
    "run_check",
]
