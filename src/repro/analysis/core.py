"""Finding model, source loading, suppressions, and the rule registry.

The serving stack's correctness rests on conventions — never block the
event loop, retire every shared-memory segment, fold ``index.generation``
into cache keys, keep wire JSON strict, implement the full mergeable
protocol, route mutations through the write barrier. Each was learned
from a real bug; ``repro check`` makes them machine-checked instead of
remembered.

This module is the framework half: :class:`SourceFile` parses one file
and its ``# repro: allow(<rule>)`` suppression comments, :class:`Finding`
is the diagnostic unit (rule, location, severity, fix hint),
:class:`Rule` + :func:`register` form the registry the runner iterates,
and :class:`Project` holds the analyzed file set plus the lazily built
call graph shared by reachability rules. The rules themselves live in
:mod:`repro.analysis.rules`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

#: ``# repro: allow(rule-a, rule-b)`` — on the offending line, or on a
#: comment-only line directly above it. ``allow(*)`` silences every rule.
SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\(\s*([^)]*?)\s*\)")

SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violated at a location, with a fix hint."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"
    fix_hint: str = ""

    @property
    def anchor(self) -> str:
        """The clickable ``path:line`` identity of this finding."""
        return f"{self.path}:{self.line}"

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule, self.message)

    def to_dict(self) -> dict:
        """Stable-keyed JSON form (the ``--format json`` contract)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "anchor": self.anchor,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }

    def render(self) -> str:
        """The one-finding text form: ``path:line:col: severity: [rule] ...``."""
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity}: [{self.rule}] {self.message}"
        )
        if self.fix_hint:
            text += f"\n    fix: {self.fix_hint}"
        return text


def parse_suppressions(text: str) -> dict[int, frozenset[str]]:
    """Map line number -> rule names allowed there.

    A suppression on a code line covers that line; on a comment-only line
    it covers the line below (so long messages fit above the statement).
    """
    table: dict[int, frozenset[str]] = {}
    for number, raw in enumerate(text.splitlines(), start=1):
        match = SUPPRESS_RE.search(raw)
        if not match:
            continue
        rules = frozenset(
            name.strip() for name in match.group(1).split(",") if name.strip()
        )
        if not rules:
            continue
        target = number + 1 if raw.strip().startswith("#") else number
        table[target] = table.get(target, frozenset()) | rules
    return table


class SourceFile:
    """One parsed python file plus its suppression table.

    Raises ``SyntaxError`` on unparsable input; the runner converts that
    into a ``syntax-error`` finding rather than crashing the whole check.
    """

    def __init__(self, path: str, text: str):
        self.path = str(path)
        self.text = text
        self.tree = ast.parse(text, filename=self.path)
        self.suppressions = parse_suppressions(text)

    def in_package(self, name: str) -> bool:
        """Whether this file lives under a ``name/`` path component
        (e.g. ``in_package("serve")`` for the serving-layer rules)."""
        return name in re.split(r"[\\/]", self.path)[:-1]

    def is_suppressed(self, finding: Finding) -> bool:
        rules = self.suppressions.get(finding.line, frozenset())
        return finding.rule in rules or "*" in rules


class Rule:
    """One named invariant check.

    Subclasses set ``name`` / ``description`` / ``fix_hint`` and implement
    :meth:`check`, yielding :class:`Finding` objects. Decorate with
    :func:`register` to appear in ``repro check``.
    """

    name: str = ""
    description: str = ""
    severity: str = "error"
    fix_hint: str = ""

    def check(self, source: SourceFile, project: "Project"):
        raise NotImplementedError

    def finding(
        self, source: SourceFile, node, message: str,
        fix_hint: str | None = None, severity: str | None = None,
    ) -> Finding:
        """A :class:`Finding` anchored at ``node`` (any object with
        ``lineno`` / ``col_offset``, i.e. AST nodes and call sites)."""
        return Finding(
            rule=self.name,
            path=source.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=self.severity if severity is None else severity,
            fix_hint=self.fix_hint if fix_hint is None else fix_hint,
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding one :class:`Rule` subclass to the registry."""
    rule = cls()
    if not rule.name:
        raise ValueError(f"{cls.__name__} must set a rule name")
    if rule.severity not in SEVERITIES:
        raise ValueError(f"{cls.__name__}.severity must be one of {SEVERITIES}")
    _REGISTRY[rule.name] = rule
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by name (import populates the registry)."""
    from repro.analysis import rules as _rules  # noqa: F401  (registration)

    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_rules(names) -> list[Rule]:
    """The named subset of the registry; unknown names raise ``KeyError``."""
    available = {rule.name: rule for rule in all_rules()}
    missing = sorted(set(names) - set(available))
    if missing:
        raise KeyError(
            f"unknown rule(s) {missing}; available: {sorted(available)}"
        )
    return [available[name] for name in sorted(set(names))]


class Project:
    """The analyzed file set plus its lazily built call graph."""

    def __init__(self, sources: list[SourceFile]):
        self.sources = list(sources)
        self._callgraph = None

    @property
    def callgraph(self):
        if self._callgraph is None:
            from repro.analysis.callgraph import CallGraph

            self._callgraph = CallGraph(self.sources)
        return self._callgraph

    def class_def(self, name: str):
        """The project ``ClassDef`` for ``name`` (None when undefined here)."""
        return self.callgraph.classes.get(name)

    def run(self, rules=None) -> tuple[list[Finding], list[Finding]]:
        """Run ``rules`` (default: all) over every source.

        Returns ``(active, suppressed)``, both sorted by location — the
        split is what lets the runner fail on new findings while counting
        deliberate ``# repro: allow(...)`` waivers separately.
        """
        chosen = all_rules() if rules is None else list(rules)
        active: list[Finding] = []
        suppressed: list[Finding] = []
        for rule in chosen:
            for source in self.sources:
                for finding in rule.check(source, self):
                    bucket = (
                        suppressed if source.is_suppressed(finding) else active
                    )
                    bucket.append(finding)
        active.sort(key=Finding.sort_key)
        suppressed.sort(key=Finding.sort_key)
        return active, suppressed
