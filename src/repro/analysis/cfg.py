"""Per-function control-flow graphs for the path-sensitive rules.

The call graph answers *what* a function invokes; it cannot answer in
*which order* along *which paths*. The bug classes PR 6's linter missed —
state mutated across an ``await``, an fsync skipped on one branch, a
resource leaked on the exception edge — are ordering properties, so the
dataflow rules need a CFG, not a syntax tree.

Design choices, tuned for a project linter rather than a compiler:

- **Statement-level nodes.** One node per simple statement; compound
  statements (``if``/``while``/``for``/``with``/``try``) contribute only
  their *header* expressions to their node — the bodies become separate
  nodes wired by edges. That keeps node count small while preserving the
  facts the rules read (reads/writes/awaits per node).
- **Two edge kinds.** ``normal`` and ``exception``. Any node whose own
  expressions contain a call, ``await``, ``raise``, or ``assert`` is
  assumed able to raise; its exception edges run to the innermost
  enclosing handlers (and ultimately to a synthetic ``raise_exit``).
  Rules that exempt failure paths (dir-fsync after rename) key off the
  edge kind.
- **``finally`` built per route.** The finally body is instantiated
  twice: a normal-route copy that continues to the following statement,
  and an exceptional-route copy whose exits re-raise to the enclosing
  exception target. Sharing one copy would merge the two routes' facts
  and poison *must* analyses (the exceptional route reaching a rename
  without its fsync would erase the fact the normal route established).
  ``return`` inside a ``try`` threads through every pending finally
  body before reaching the exit; ``break``/``continue`` through a
  ``finally`` is approximated as jumping directly (rare enough in this
  codebase not to matter).
- **Nested scopes opaque.** A nested ``def``/``lambda`` is deferred
  execution: it becomes one definition statement here and gets its own
  CFG if a rule wants one (mirrors ``callgraph.walk_own``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

NORMAL = "normal"
EXCEPTION = "exception"

#: Statement types whose node carries the whole statement's expressions.
_SIMPLE = (
    ast.Expr, ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Return,
    ast.Raise, ast.Assert, ast.Delete, ast.Pass, ast.Break, ast.Continue,
    ast.Import, ast.ImportFrom, ast.Global, ast.Nonlocal,
)


def header_exprs(stmt: ast.stmt) -> list[ast.AST]:
    """The AST parts evaluated *at* this statement's node (bodies of
    compound statements are separate nodes and excluded here)."""
    if isinstance(stmt, _SIMPLE):
        return [stmt]
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return list(stmt.items)
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    # Try headers, nested def/class definitions: nothing evaluated here
    # beyond decorators/defaults, which the rules do not need.
    return []


def _iter_own(parts) -> list[ast.AST]:
    """Walk ``parts`` without descending into nested function/class
    scopes or lambdas (their execution is deferred elsewhere)."""
    out: list[ast.AST] = []
    stack = [p for p in parts if p is not None]
    while stack:
        node = stack.pop()
        out.append(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
            ):
                continue
            stack.append(child)
    return out


@dataclass(eq=False)
class Node:
    """One CFG node: a statement (or synthetic entry/exit) plus the
    control and concurrency facts the dataflow rules consume.

    Identity equality (``eq=False``): nodes are graph vertices, and the
    generated field-wise ``__eq__`` would recurse through edge lists."""

    index: int
    stmt: ast.stmt | None          #: None for synthetic entry/exit nodes
    label: str                     #: "entry" / "exit" / "raise" / "stmt"
    is_suspension: bool = False    #: own exprs await or yield
    can_raise: bool = False
    succs: list[tuple["Node", str]] = field(default_factory=list)
    preds: list[tuple["Node", str]] = field(default_factory=list)

    @property
    def lineno(self) -> int:
        return getattr(self.stmt, "lineno", 0)

    def own_nodes(self) -> list[ast.AST]:
        """Every AST node evaluated at this CFG node (own scope only)."""
        if self.stmt is None:
            return []
        return _iter_own(header_exprs(self.stmt))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.index} {self.label} line={self.lineno}>"


class CFG:
    """A per-function graph with one entry and two exits (normal/raise)."""

    def __init__(self, func: ast.AST):
        self.func = func
        self.nodes: list[Node] = []
        self.entry = self._new(None, "entry")
        self.exit = self._new(None, "exit")
        self.raise_exit = self._new(None, "raise")

    def _new(self, stmt: ast.stmt | None, label: str) -> Node:
        node = Node(index=len(self.nodes), stmt=stmt, label=label)
        self.nodes.append(node)
        return node

    def edge(self, src: Node, dst: Node, kind: str = NORMAL) -> None:
        if (dst, kind) not in src.succs:
            src.succs.append((dst, kind))
            dst.preds.append((src, kind))

    def statement_nodes(self) -> list[Node]:
        return [n for n in self.nodes if n.stmt is not None]


def _contains(parts, types) -> bool:
    return any(isinstance(n, types) for n in parts)


@dataclass
class _LoopFrame:
    continue_target: Node
    break_joins: list[Node] = field(default_factory=list)


class _Builder:
    """Recursive-descent CFG construction over one function body.

    ``_block`` threads a frontier of dangling nodes through a statement
    list; ``_exc_targets`` is the stack-shaped answer to "where does an
    exception raised here go first" (innermost handlers, then outward,
    ending at ``raise_exit``).
    """

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.loop_stack: list[_LoopFrame] = []
        # The nodes a raise inside the current context reaches first
        # (innermost handlers, or a finally's exceptional-route entry).
        self.exc_stack: list[list[Node]] = []
        # Pending finalbody statement lists (innermost last): a return
        # inside a try must execute these before reaching the exit.
        self.finally_stack: list[list] = []

    # -- exception wiring ------------------------------------------------
    def _exc_targets(self) -> list[Node]:
        if self.exc_stack:
            return self.exc_stack[-1]
        return [self.cfg.raise_exit]

    def _wire_raise(self, node: Node) -> None:
        if not node.can_raise:
            return
        for target in self._exc_targets():
            self.cfg.edge(node, target, EXCEPTION)

    # -- node construction -----------------------------------------------
    def _stmt_node(self, stmt: ast.stmt) -> Node:
        node = self.cfg._new(stmt, "stmt")
        own = node.own_nodes()
        node.is_suspension = (
            _contains(own, (ast.Await, ast.Yield, ast.YieldFrom))
            or isinstance(stmt, (ast.AsyncFor, ast.AsyncWith))
        )
        node.can_raise = node.is_suspension or _contains(
            own, (ast.Call, ast.Raise, ast.Assert)
        )
        self._wire_raise(node)
        return node

    def _join(self, frontier: list[Node], node: Node) -> None:
        for src in frontier:
            self.cfg.edge(src, node, NORMAL)

    # -- statement dispatch ------------------------------------------------
    def build(self) -> None:
        body = getattr(self.cfg.func, "body", [])
        frontier = self._block(body, [self.cfg.entry])
        self._join(frontier, self.cfg.exit)

    def _block(self, stmts, frontier: list[Node]) -> list[Node]:
        for stmt in stmts:
            if not frontier:
                break  # unreachable tail (after return/raise on all paths)
            frontier = self._stmt(stmt, frontier)
        return frontier

    def _stmt(self, stmt: ast.stmt, frontier: list[Node]) -> list[Node]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, frontier)
        node = self._stmt_node(stmt)
        self._join(frontier, node)
        if isinstance(stmt, ast.Return):
            tail = self._run_finallys([node])
            self._join(tail, self.cfg.exit)
            return []
        if isinstance(stmt, ast.Raise):
            # already wired to exc targets via can_raise
            return []
        if isinstance(stmt, ast.Break):
            if self.loop_stack:
                self.loop_stack[-1].break_joins.append(node)
            return []
        if isinstance(stmt, ast.Continue):
            if self.loop_stack:
                self.cfg.edge(node, self.loop_stack[-1].continue_target, NORMAL)
            return []
        return [node]

    def _if(self, stmt: ast.If, frontier: list[Node]) -> list[Node]:
        test = self._stmt_node(stmt)
        self._join(frontier, test)
        then_out = self._block(stmt.body, [test])
        else_out = self._block(stmt.orelse, [test]) if stmt.orelse else [test]
        return then_out + else_out

    def _loop(self, stmt, frontier: list[Node]) -> list[Node]:
        head = self._stmt_node(stmt)
        self._join(frontier, head)
        frame = _LoopFrame(continue_target=head)
        self.loop_stack.append(frame)
        body_out = self._block(stmt.body, [head])
        self.loop_stack.pop()
        self._join(body_out, head)  # back edge
        # loop exit: condition false / iterator exhausted, plus breaks
        exits = [head] + frame.break_joins
        if stmt.orelse:
            exits = self._block(stmt.orelse, [head]) + frame.break_joins
        return exits

    def _with(self, stmt, frontier: list[Node]) -> list[Node]:
        head = self._stmt_node(stmt)
        self._join(frontier, head)
        return self._block(stmt.body, [head])

    def _match(self, stmt: ast.Match, frontier: list[Node]) -> list[Node]:
        head = self._stmt_node(stmt)
        self._join(frontier, head)
        outs: list[Node] = [head]  # no case may match
        for case in stmt.cases:
            outs.extend(self._block(case.body, [head]))
        return outs

    def _run_finallys(self, frontier: list[Node]) -> list[Node]:
        """Thread ``frontier`` through every pending finalbody, innermost
        first — the route a ``return`` takes out of nested ``try``s. Each
        finalbody is built with the frames *outside* it active, so its
        own statements do not re-enter it."""
        stack = self.finally_stack
        for depth in range(len(stack) - 1, -1, -1):
            if not frontier:
                break
            self.finally_stack = stack[:depth]
            frontier = self._block(stack[depth], frontier)
            self.finally_stack = stack
        return frontier

    def _try(self, stmt: ast.Try, frontier: list[Node]) -> list[Node]:
        handler_heads: list[Node] = []
        handler_nodes: list[tuple[ast.ExceptHandler, Node]] = []
        for handler in stmt.handlers:
            head = self.cfg._new(handler, "stmt")
            handler_heads.append(head)
            handler_nodes.append((handler, head))

        # Exceptions inside the body dispatch to the handlers; if there
        # are none (try/finally), they go straight to the exceptional-
        # route finally copy.
        finally_exc_entry: Node | None = None
        if stmt.finalbody:
            finally_exc_entry = self.cfg._new(None, "finally")
            self.finally_stack.append(stmt.finalbody)

        body_targets = handler_heads or (
            [finally_exc_entry] if finally_exc_entry is not None
            else self._exc_targets()
        )
        self.exc_stack.append(body_targets)
        body_out = self._block(stmt.body, frontier)
        self.exc_stack.pop()

        # else runs only when the body completed without raising
        if stmt.orelse:
            body_out = self._block(stmt.orelse, body_out)

        # Handlers: their own raises (and unmatched exceptions, which we
        # over-approximate as flowing through every handler head) go to
        # the finally route or outward.
        handler_exc = (
            [finally_exc_entry] if finally_exc_entry is not None
            else self._exc_targets()
        )
        handler_out: list[Node] = []
        for handler, head in handler_nodes:
            # A handler head can re-raise outward when no clause matches.
            for target in handler_exc:
                self.cfg.edge(head, target, EXCEPTION)
            self.exc_stack.append(handler_exc)
            handler_out.extend(self._block(handler.body, [head]))
            self.exc_stack.pop()

        normal_out = body_out + handler_out

        if not stmt.finalbody:
            return normal_out

        # Two finally copies: the normal-route one continues to the next
        # statement; the exceptional-route one re-raises outward. Keeping
        # the routes separate keeps must-facts (fsync-before-rename)
        # established on the normal route intact through the finally.
        assert finally_exc_entry is not None
        self.finally_stack.pop()
        fin_normal_out = self._block(stmt.finalbody, normal_out)
        fin_exc_out = self._block(stmt.finalbody, [finally_exc_entry])
        for node in fin_exc_out:
            for target in self._exc_targets():
                self.cfg.edge(node, target, EXCEPTION)
        return fin_normal_out


def build_cfg(func: ast.AST) -> CFG:
    """The CFG of one ``FunctionDef`` / ``AsyncFunctionDef``."""
    cfg = CFG(func)
    _Builder(cfg).build()
    return cfg
