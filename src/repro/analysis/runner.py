"""Walk paths, run the rule registry, render text/JSON — the engine
behind ``repro check``.

Exit-code semantics (the CI contract):

- ``0`` — clean: no active findings (suppressed ones are counted but do
  not fail the check);
- ``1`` — findings (including files that fail to parse, reported as
  ``syntax-error`` findings);
- ``2`` — usage error: a path that does not exist or an unknown rule.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

from repro.analysis.core import Finding, Project, SourceFile, all_rules, get_rules
from repro.errors import ReproError

#: What ``repro check`` (and the CI gate) scans when no paths are given.
DEFAULT_PATHS = ("src", "benchmarks")

#: Bumped when the ``--format json`` schema changes shape.
SCHEMA_VERSION = 1


@dataclass
class CheckReport:
    """Everything one check run produced, renderable as text or JSON."""

    paths: list[str]
    rules: list[str]
    files_checked: int
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1


def collect_files(paths) -> list[str]:
    """Every ``.py`` file under ``paths`` (deterministic order), skipping
    hidden directories and ``__pycache__``."""
    files: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
            continue
        if not os.path.isdir(path):
            raise ReproError(f"check path does not exist: {path}")
        for root, dirs, names in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs if not d.startswith(".") and d != "__pycache__"
            )
            for name in sorted(names):
                if name.endswith(".py"):
                    files.append(os.path.join(root, name))
    return files


def load_sources(files) -> tuple[list[SourceFile], list[Finding]]:
    """Parse every file; unparsable ones become ``syntax-error`` findings
    instead of aborting the whole check."""
    sources: list[SourceFile] = []
    errors: list[Finding] = []
    for path in files:
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
            sources.append(SourceFile(path, text))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", None) or 1
            errors.append(
                Finding(
                    rule="syntax-error",
                    path=path,
                    line=int(line),
                    col=int(getattr(exc, "offset", None) or 0),
                    message=f"file cannot be analyzed: {exc}",
                )
            )
    return sources, errors


def run_check(paths=None, rule_names=None) -> CheckReport:
    """Run the (selected) rules over ``paths`` (default: src + benchmarks)."""
    chosen_paths = list(paths) if paths else list(DEFAULT_PATHS)
    try:
        rules = get_rules(rule_names) if rule_names else all_rules()
    except KeyError as exc:
        raise ReproError(str(exc.args[0])) from exc
    files = collect_files(chosen_paths)
    sources, parse_errors = load_sources(files)
    findings, suppressed = Project(sources).run(rules)
    findings = sorted(findings + parse_errors, key=Finding.sort_key)
    return CheckReport(
        paths=chosen_paths,
        rules=[rule.name for rule in rules],
        files_checked=len(files),
        findings=findings,
        suppressed=suppressed,
    )


def render_text(report: CheckReport) -> str:
    lines = [finding.render() for finding in report.findings]
    status = "clean" if report.clean else f"{len(report.findings)} finding(s)"
    lines.append(
        f"repro check: {report.files_checked} files, {status}, "
        f"{len(report.suppressed)} suppressed"
    )
    return "\n".join(lines)


def render_json(report: CheckReport) -> dict:
    """The stable ``--format json`` schema (see ``SCHEMA_VERSION``)."""
    return {
        "version": SCHEMA_VERSION,
        "paths": list(report.paths),
        "rules": list(report.rules),
        "files_checked": report.files_checked,
        "findings": [finding.to_dict() for finding in report.findings],
        "suppressed": [finding.to_dict() for finding in report.suppressed],
        "summary": {
            "findings": len(report.findings),
            "suppressed": len(report.suppressed),
            "clean": report.clean,
        },
    }


def describe_rules() -> str:
    """``--list-rules`` output: one ``name: description`` block per rule."""
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.name} ({rule.severity}): {rule.description}")
    return "\n".join(lines)


def main_check(paths, fmt="text", rule_names=None, list_rules=False, out=print) -> int:
    """The CLI body: run, render, map the result to an exit code."""
    if list_rules:
        out(describe_rules())
        return 0
    try:
        report = run_check(paths, rule_names)
    except ReproError as exc:
        out(f"repro check: {exc}")
        return 2
    if fmt == "json":
        out(json.dumps(render_json(report), indent=2, sort_keys=False))
    else:
        out(render_text(report))
    return report.exit_code
