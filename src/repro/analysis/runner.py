"""Walk paths, run the rule registry, render text/JSON/SARIF — the
engine behind ``repro check``.

Exit-code semantics (the CI contract):

- ``0`` — clean: no active findings (suppressed ones and findings
  waived by ``--baseline`` are counted but do not fail the check);
- ``1`` — findings (including files that fail to parse, reported as
  ``syntax-error`` findings);
- ``2`` — usage error: a path that does not exist, an unknown rule, or
  an unreadable baseline file.

Large trees can spread rule execution over a process pool (``--jobs``).
Each worker re-parses the *whole* project — the call-graph and CFG rules
need cross-file context — but runs the rules over only its slice of the
files, so the speedup applies to the expensive half (rule execution)
while parsing stays embarrassingly duplicated and cheap.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from repro.analysis.core import Finding, Project, SourceFile, all_rules, get_rules
from repro.errors import ReproError

#: What ``repro check`` (and the CI gate) scans when no paths are given.
DEFAULT_PATHS = ("src", "benchmarks")

#: Bumped when the ``--format json`` schema changes shape.
#: 2: added ``baselined`` findings and the ``summary.baselined`` count.
SCHEMA_VERSION = 2

#: Baseline-file schema (independent of the report schema).
BASELINE_VERSION = 1


@dataclass
class CheckReport:
    """Everything one check run produced, renderable as text or JSON."""

    paths: list[str]
    rules: list[str]
    files_checked: int
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    #: Findings waived because their fingerprint appears in the
    #: ``--baseline`` file: known debt, reported but not failing.
    baselined: list[Finding] = field(default_factory=list)
    #: Rule name -> cumulative seconds spent executing it (``--stats``).
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1


def collect_files(paths) -> list[str]:
    """Every ``.py`` file under ``paths`` (deterministic order), skipping
    hidden directories and ``__pycache__``."""
    files: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
            continue
        if not os.path.isdir(path):
            raise ReproError(f"check path does not exist: {path}")
        for root, dirs, names in os.walk(path):
            dirs[:] = sorted(
                d for d in dirs if not d.startswith(".") and d != "__pycache__"
            )
            for name in sorted(names):
                if name.endswith(".py"):
                    files.append(os.path.join(root, name))
    return files


def load_sources(files) -> tuple[list[SourceFile], list[Finding]]:
    """Parse every file; unparsable ones become ``syntax-error`` findings
    instead of aborting the whole check."""
    sources: list[SourceFile] = []
    errors: list[Finding] = []
    for path in files:
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
            sources.append(SourceFile(path, text))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", None) or 1
            errors.append(
                Finding(
                    rule="syntax-error",
                    path=path,
                    line=int(line),
                    col=int(getattr(exc, "offset", None) or 0),
                    message=f"file cannot be analyzed: {exc}",
                )
            )
    return sources, errors


def _run_rules(project: Project, rules, sources=None):
    """Project.run with per-rule wall-clock timing; ``sources`` restricts
    which files findings are *reported* for (the project still provides
    full cross-file context)."""
    chosen = sources if sources is not None else project.sources
    active: list[Finding] = []
    suppressed: list[Finding] = []
    timings: dict[str, float] = {}
    for rule in rules:
        start = time.perf_counter()
        for source in chosen:
            for finding in rule.check(source, project):
                bucket = (
                    suppressed if source.is_suppressed(finding) else active
                )
                bucket.append(finding)
        timings[rule.name] = timings.get(rule.name, 0.0) + (
            time.perf_counter() - start
        )
    return active, suppressed, timings


def _check_chunk(files, lo, hi, rule_names):
    """Process-pool worker: full-project parse, findings for one slice.

    Parse errors are attributed to the worker that owns the failing file
    so the merged report sees each exactly once.
    """
    rules = get_rules(rule_names) if rule_names else all_rules()
    sources, parse_errors = load_sources(files)
    chunk_paths = set(files[lo:hi])
    chunk_sources = [s for s in sources if s.path in chunk_paths]
    chunk_errors = [e for e in parse_errors if e.path in chunk_paths]
    project = Project(sources)
    active, suppressed, timings = _run_rules(project, rules, chunk_sources)
    return active, suppressed, chunk_errors, timings


def _chunk_bounds(count: int, jobs: int) -> list[tuple[int, int]]:
    """Split ``count`` items into ``jobs`` contiguous near-equal slices."""
    jobs = max(1, min(jobs, count))
    base, extra = divmod(count, jobs)
    bounds = []
    lo = 0
    for i in range(jobs):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def run_check(paths=None, rule_names=None, jobs: int = 1) -> CheckReport:
    """Run the (selected) rules over ``paths`` (default: src + benchmarks).

    ``jobs > 1`` fans rule execution out over a process pool; results are
    identical to a serial run (workers differ only in which files they
    report on), so it is purely a wall-clock knob.
    """
    chosen_paths = list(paths) if paths else list(DEFAULT_PATHS)
    try:
        rules = get_rules(rule_names) if rule_names else all_rules()
    except KeyError as exc:
        raise ReproError(str(exc.args[0])) from exc
    files = collect_files(chosen_paths)
    if jobs > 1 and len(files) > 1:
        from concurrent.futures import ProcessPoolExecutor

        bounds = _chunk_bounds(len(files), jobs)
        findings: list[Finding] = []
        suppressed: list[Finding] = []
        timings: dict[str, float] = {}
        with ProcessPoolExecutor(max_workers=len(bounds)) as pool:
            futures = [
                pool.submit(_check_chunk, files, lo, hi, rule_names)
                for lo, hi in bounds
            ]
            for future in futures:
                active, quiet, errors, worker_timings = future.result()
                findings.extend(active)
                findings.extend(errors)
                suppressed.extend(quiet)
                for name, seconds in worker_timings.items():
                    timings[name] = timings.get(name, 0.0) + seconds
    else:
        sources, parse_errors = load_sources(files)
        findings, suppressed, timings = _run_rules(Project(sources), rules)
        findings = findings + parse_errors
    findings.sort(key=Finding.sort_key)
    suppressed.sort(key=Finding.sort_key)
    return CheckReport(
        paths=chosen_paths,
        rules=[rule.name for rule in rules],
        files_checked=len(files),
        findings=findings,
        suppressed=suppressed,
        timings=timings,
    )


# ------------------------------------------------------------------ baseline
def finding_fingerprint(finding: Finding) -> str:
    """Line-independent identity used by ``--baseline``: code motion must
    not churn the baseline, so the line number stays out of it."""
    return f"{finding.rule}::{finding.path}::{finding.message}"


def write_baseline(report: CheckReport, path: str) -> int:
    """Record every active finding's fingerprint; returns how many."""
    fingerprints = sorted({finding_fingerprint(f) for f in report.findings})
    payload = {"version": BASELINE_VERSION, "fingerprints": fingerprints}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return len(fingerprints)


def load_baseline(path: str) -> set[str]:
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        fingerprints = payload["fingerprints"]
        if not isinstance(fingerprints, list):
            raise TypeError("'fingerprints' must be a list")
        return set(fingerprints)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise ReproError(f"cannot read baseline {path}: {exc}") from exc


def apply_baseline(report: CheckReport, fingerprints: set[str]) -> CheckReport:
    """Split ``report.findings`` into still-failing vs known-baseline."""
    fresh = [
        f for f in report.findings
        if finding_fingerprint(f) not in fingerprints
    ]
    known = [
        f for f in report.findings if finding_fingerprint(f) in fingerprints
    ]
    report.findings = fresh
    report.baselined = known
    return report


# ----------------------------------------------------------------- rendering
def render_text(report: CheckReport) -> str:
    lines = [finding.render() for finding in report.findings]
    status = "clean" if report.clean else f"{len(report.findings)} finding(s)"
    summary = (
        f"repro check: {report.files_checked} files, {status}, "
        f"{len(report.suppressed)} suppressed"
    )
    if report.baselined:
        summary += f", {len(report.baselined)} baselined"
    lines.append(summary)
    return "\n".join(lines)


def render_stats(report: CheckReport) -> str:
    """``--stats``: per-rule wall time, slowest first."""
    total = sum(report.timings.values())
    lines = ["rule timings (seconds of rule execution, slowest first):"]
    for name, seconds in sorted(
        report.timings.items(), key=lambda item: -item[1]
    ):
        lines.append(f"  {name:<24} {seconds:8.3f}")
    lines.append(f"  {'total':<24} {total:8.3f}")
    return "\n".join(lines)


def render_json(report: CheckReport) -> dict:
    """The stable ``--format json`` schema (see ``SCHEMA_VERSION``)."""
    return {
        "version": SCHEMA_VERSION,
        "paths": list(report.paths),
        "rules": list(report.rules),
        "files_checked": report.files_checked,
        "findings": [finding.to_dict() for finding in report.findings],
        "suppressed": [finding.to_dict() for finding in report.suppressed],
        "baselined": [finding.to_dict() for finding in report.baselined],
        "summary": {
            "findings": len(report.findings),
            "suppressed": len(report.suppressed),
            "baselined": len(report.baselined),
            "clean": report.clean,
        },
    }


_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _sarif_result(finding: Finding, suppressed: bool = False) -> dict:
    message = finding.message
    if finding.fix_hint:
        message += f" (fix: {finding.fix_hint})"
    result = {
        "ruleId": finding.rule,
        "level": "error" if finding.severity == "error" else "warning",
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace(os.sep, "/"),
                    },
                    "region": {
                        "startLine": max(1, finding.line),
                        "startColumn": max(1, finding.col + 1),
                    },
                }
            }
        ],
    }
    if suppressed:
        result["suppressions"] = [{"kind": "inSource"}]
    return result


def render_sarif(report: CheckReport) -> dict:
    """SARIF 2.1.0, the exchange format CI annotation tooling consumes.

    Active findings are plain results; ``# repro: allow(...)`` waivers
    are included with an ``inSource`` suppression so dashboards can show
    (not count) them. Baselined findings are omitted entirely — the
    baseline is this tool's own debt ledger, not source-level intent.
    """
    known = {rule.name: rule for rule in all_rules()}
    mentioned = sorted(
        {f.rule for f in report.findings}
        | {f.rule for f in report.suppressed}
        | set(report.rules)
    )
    rules_meta = []
    for name in mentioned:
        rule = known.get(name)
        meta = {"id": name}
        if rule is not None:
            meta["shortDescription"] = {"text": rule.description}
        rules_meta.append(meta)
    results = [_sarif_result(f) for f in report.findings]
    results += [_sarif_result(f, suppressed=True) for f in report.suppressed]
    return {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "rules": rules_meta,
                    }
                },
                "results": results,
            }
        ],
    }


def describe_rules() -> str:
    """``--list-rules`` output: one ``name: description`` block per rule."""
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.name} ({rule.severity}): {rule.description}")
    return "\n".join(lines)


def main_check(
    paths,
    fmt="text",
    rule_names=None,
    list_rules=False,
    out=print,
    baseline=None,
    write_baseline_path=None,
    jobs=1,
    stats=False,
) -> int:
    """The CLI body: run, render, map the result to an exit code."""
    if list_rules:
        out(describe_rules())
        return 0
    try:
        report = run_check(paths, rule_names, jobs=jobs)
        if write_baseline_path is not None:
            count = write_baseline(report, write_baseline_path)
            out(
                f"repro check: wrote {count} fingerprint(s) to "
                f"{write_baseline_path}"
            )
            return 0
        if baseline is not None:
            report = apply_baseline(report, load_baseline(baseline))
    except ReproError as exc:
        out(f"repro check: {exc}")
        return 2
    if fmt == "json":
        out(json.dumps(render_json(report), indent=2, sort_keys=False))
    elif fmt == "sarif":
        out(json.dumps(render_sarif(report), indent=2, sort_keys=False))
    else:
        out(render_text(report))
    if stats:
        out(render_stats(report))
    return report.exit_code
