"""Plain-text reporting: the same rows/series the paper's artifacts show."""

from __future__ import annotations

import json
import os

from repro.jsonutil import sanitize_json


def format_table(headers, rows, title: str = "") -> str:
    """A fixed-width text table."""
    columns = [str(h) for h in headers]
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in columns]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs, ys, x_label: str = "x", y_label: str = "y") -> str:
    """A two-column series (one paper figure line)."""
    rows = list(zip(xs, ys))
    return format_table([x_label, y_label], rows, title=name)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 100:
            return f"{cell:.1f}"
        if abs(cell) >= 0.01:
            return f"{cell:.4g}"
        return f"{cell:.3e}"
    return str(cell)


def write_result(name: str, text: str, results_dir: str | None = None) -> str:
    """Print a report and persist it under ``results/`` for EXPERIMENTS.md."""
    results_dir = results_dir or os.environ.get("REPRO_RESULTS_DIR", "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print(f"\n=== {name} ===\n{text}\n")
    return path


def write_json_result(name: str, payload, results_dir: str | None = None) -> str:
    """Persist a machine-readable result file under ``results/``.

    Non-finite floats become ``null`` (``repro.jsonutil.sanitize_json``;
    bench metrics legitimately produce them — ``QueryStats.scan_overhead``
    is ``inf`` when a query scans without matching) and encoding runs
    with ``allow_nan=False``, so the emitted file is strict JSON no
    matter what the metrics contained.
    """
    results_dir = results_dir or os.environ.get("REPRO_RESULTS_DIR", "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"{name}.json")
    with open(path, "w") as handle:
        json.dump(sanitize_json(payload), handle, indent=2, allow_nan=False)
        handle.write("\n")
    return path
