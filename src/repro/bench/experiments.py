"""One driver per paper artifact (Tables 1-4, Figures 5, 7-17).

Every driver runs at a laptop-friendly scale (row counts ~1000x below the
paper's; see DESIGN.md), prints the same rows/series the paper reports, and
persists them under ``results/`` for EXPERIMENTS.md. Shapes — who wins, by
roughly what factor, where crossovers fall — are the reproduction target,
not absolute times.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines import SimpleGridIndex
from repro.bench.harness import (
    build_flood,
    build_tuned_baselines,
    run_workload,
    summarize,
)
from repro.bench.report import format_table, write_result
from repro.core.calibration import fit_cost_model, generate_training_examples
from repro.core.cost import AnalyticCostModel
from repro.core.index import FloodIndex
from repro.core.optimizer import find_optimal_layout, heuristic_layout
from repro.datasets import load
from repro.datasets.synthetic import generate_uniform, uniform_workload
from repro.ml.plm import PiecewiseLinearModel
from repro.ml.rmi import RecursiveModelIndex
from repro.workloads.mixes import WORKLOAD_MIXES, build_mix
from repro.workloads.query_gen import split_train_test
from repro.workloads.random_shift import random_workload

#: Bench-scale dataset sizes (paper sizes in DESIGN.md). Large enough that
#: scan costs dominate fixed per-query interpreter overhead (the regime the
#: paper's comparisons live in) while keeping the full suite laptop-fast.
BENCH_ROWS = {"sales": 100_000, "tpch": 150_000, "osm": 120_000, "perfmon": 120_000}
BENCH_QUERIES = 120
PAPER_DATASETS = ("sales", "tpch", "osm", "perfmon")

_bundle_cache: dict = {}
_results_cache: dict = {}


def get_bundle(name: str, n: int | None = None, num_queries: int = BENCH_QUERIES,
               seed: int = 0):
    """Cached dataset bundle at bench scale."""
    key = (name, n, num_queries, seed)
    if key not in _bundle_cache:
        _bundle_cache[key] = load(
            name, n=n or BENCH_ROWS.get(name), num_queries=num_queries, seed=seed
        )
    return _bundle_cache[key]


def dataset_results(name: str, tune_pages: bool = True):
    """Cached (bundle, indexes, workload results, flood optimization) for
    the Figure 7 configuration — shared by Figures 7/8 and Tables 2/4."""
    if name in _results_cache:
        return _results_cache[name]
    bundle = get_bundle(name)
    indexes = build_tuned_baselines(
        bundle.table, bundle.train, tune_pages=tune_pages
    )
    flood, opt = build_flood(bundle.table, bundle.train, seed=1)
    indexes["Flood"] = flood
    results = {
        idx_name: (run_workload(index, bundle.test) if index else None)
        for idx_name, index in indexes.items()
    }
    _results_cache[name] = (bundle, indexes, results, opt)
    return _results_cache[name]


# --------------------------------------------------------------------- Table 1
def table1_datasets() -> str:
    """Table 1: dataset and query characteristics."""
    rows = []
    for name in PAPER_DATASETS:
        bundle = get_bundle(name)
        size_mb = bundle.table.size_bytes() / 1e6
        rows.append(
            [
                name,
                bundle.num_rows,
                len(bundle.train) + len(bundle.test),
                len(bundle.dims),
                round(size_mb, 2),
            ]
        )
    text = format_table(
        ["dataset", "records", "queries", "dimensions", "size (MB)"],
        rows,
        title="Table 1: dataset and query characteristics (bench scale)",
    )
    write_result("table1_datasets", text)
    return text


# -------------------------------------------------------------------- Figure 5
def fig5_weights(n: int = 10_000, num_queries: int = 30) -> str:
    """Figure 5: ws is non-constant and non-linear in Ns and run length.

    Also reports the paper's Section 4.1.2 comparison: prediction error of
    the learned weight model vs. fine-tuned constants.
    """
    bundle = get_bundle("tpch", n=n, num_queries=num_queries, seed=3)
    data = generate_training_examples(
        bundle.table, bundle.train, num_layouts=8, seed=4
    )
    ns = np.asarray(data.ns, dtype=np.float64)
    ws = np.asarray(data.ws, dtype=np.float64) * 1e9  # ns per point
    run = np.asarray(data.run_length, dtype=np.float64)
    ok = ns > 0
    rows = []
    edges = np.quantile(ns[ok], np.linspace(0, 1, 6))
    for lo, hi in zip(edges[:-1], edges[1:]):
        sel = ok & (ns >= lo) & (ns <= hi)
        if sel.any():
            rows.append([f"{lo:.0f}-{hi:.0f}", round(float(np.median(ws[sel])), 2),
                         round(float(np.median(run[sel])), 1)])
    spread = float(ws[ok].max() / max(ws[ok][ws[ok] > 0].min(), 1e-9))
    # Section 4.1.2 accuracy comparison: learned weights vs constants.
    model = fit_cost_model(data, seed=4)
    constant = AnalyticCostModel(
        wp=float(np.median(data.wp)), wr=float(np.median(data.wr)),
        ws=float(np.median(data.ws)),
    )
    measured, learned_err, const_err = [], [], []
    for features, wp, wr, ws_t in zip(data.features, data.wp, data.wr, data.ws):
        truth = wp * features.nc + (wr * features.nc if features.sort_filtered else 0) \
            + ws_t * features.ns
        measured.append(truth)
        learned_err.append(abs(model.predict_time(features) - truth))
        const_err.append(abs(constant.predict_time(features) - truth))
    ratio = float(np.mean(const_err) / max(np.mean(learned_err), 1e-12))
    text = format_table(
        ["Ns bucket", "median ws (ns/point)", "median run length"],
        rows,
        title=(
            "Figure 5: ws varies with scanned points / run length "
            f"(max/min spread {spread:.1f}x)\n"
            f"Constant-weight model error is {ratio:.1f}x the learned model's "
            "(paper: 9x)"
        ),
    )
    write_result("fig5_weights", text)
    return text


# -------------------------------------------------------------------- Figure 7
def fig7_overall() -> str:
    """Figure 7: average query time, Flood vs tuned baselines, 4 datasets."""
    sections = []
    for name in PAPER_DATASETS:
        _, _, results, _ = dataset_results(name)
        rows = summarize(results)
        flood_ms = results["Flood"].avg_total_time * 1e3
        for row in rows:
            if isinstance(row[1], float) and row[0] != "Flood" and flood_ms > 0:
                row[3] = f"{row[1] / flood_ms:.1f}x vs Flood"
        sections.append(
            format_table(
                ["index", "avg query time (ms)", "scan overhead", "note"],
                rows,
                title=f"Figure 7 [{name}]: query time",
            )
        )
    text = "\n\n".join(sections)
    write_result("fig7_overall", text)
    return text


# -------------------------------------------------------------------- Figure 8
def fig8_pareto() -> str:
    """Figure 8: index size vs query time (Pareto frontier)."""
    sections = []
    for name in PAPER_DATASETS:
        _, indexes, results, _ = dataset_results(name)
        rows = []
        for idx_name, index in indexes.items():
            result = results[idx_name]
            if index is None or result is None:
                rows.append([idx_name, "N/A", "N/A"])
                continue
            rows.append(
                [
                    idx_name,
                    round(index.size_bytes() / 1e3, 2),
                    round(result.avg_total_time * 1e3, 4),
                ]
            )
        sections.append(
            format_table(
                ["index", "index size (kB)", "avg query time (ms)"],
                rows,
                title=f"Figure 8 [{name}]: size vs time",
            )
        )
    text = "\n\n".join(sections)
    write_result("fig8_pareto", text)
    return text


# -------------------------------------------------------------------- Figure 9
def fig9_mixes(datasets=("tpch", "osm"), num_queries: int = 60) -> str:
    """Figure 9: representative workloads; baselines stay tuned for the
    original OLAP workload, Flood retrains per workload (its advantage)."""
    sections = []
    for name in datasets:
        bundle, indexes, _, _ = dataset_results(name)
        rows = []
        for mix in WORKLOAD_MIXES:
            queries = build_mix(bundle.table, mix, num_queries=num_queries, seed=7)
            train, test = split_train_test(queries, seed=8)
            flood, _ = build_flood(bundle.table, train, seed=9)
            row = [mix, round(run_workload(flood, test).avg_total_time * 1e3, 4)]
            for idx_name in ("Z Order", "UB tree", "Hyperoctree", "K-d tree",
                             "Grid File"):
                index = indexes.get(idx_name)
                if index is None:
                    row.append("N/A")
                else:
                    row.append(round(run_workload(index, test).avg_total_time * 1e3, 4))
            rows.append(row)
        sections.append(
            format_table(
                ["workload", "Flood", "Z Order", "UB tree", "Hyperoctree",
                 "K-d tree", "Grid File"],
                rows,
                title=f"Figure 9 [{name}]: representative workloads (ms)",
            )
        )
    text = "\n\n".join(sections)
    write_result("fig9_mixes", text)
    return text


# ------------------------------------------------------------------- Figure 10
def fig10_shifting(num_workloads: int = 6, num_queries: int = 50) -> str:
    """Figure 10: randomly shifting workloads on TPC-H. Baselines stay fixed
    (tuned for the Figure 7 workload); Flood retrains at each shift, briefly
    running the new queries on its stale layout first (the paper's spike)."""
    bundle, indexes, _, _ = dataset_results("tpch")
    flood = indexes["Flood"]
    rows = []
    for round_id in range(num_workloads):
        queries = random_workload(
            bundle.table, num_queries=num_queries, max_dims=6, seed=100 + round_id
        )
        train, test = split_train_test(queries, seed=round_id)
        stale_ms = run_workload(flood, test).avg_total_time * 1e3
        flood, opt = build_flood(bundle.table, train, seed=200 + round_id)
        adapted_ms = run_workload(flood, test).avg_total_time * 1e3
        row = [round_id, round(stale_ms, 4), round(adapted_ms, 4),
               round(opt.learn_seconds, 2)]
        for idx_name in ("Z Order", "UB tree", "Hyperoctree", "K-d tree"):
            index = indexes.get(idx_name)
            row.append(
                "N/A" if index is None
                else round(run_workload(index, test).avg_total_time * 1e3, 4)
            )
        rows.append(row)
    text = format_table(
        ["workload", "Flood stale (ms)", "Flood adapted (ms)", "retrain (s)",
         "Z Order", "UB tree", "Hyperoctree", "K-d tree"],
        rows,
        title="Figure 10: shifting workloads (TPC-H); Flood retrains, others fixed",
    )
    write_result("fig10_shifting", text)
    return text


# ------------------------------------------------------------------- Figure 11
def fig11_ablation() -> str:
    """Figure 11: Simple Grid -> +Sort Dim -> +Flattening -> +Learning."""
    sections = []
    for name in PAPER_DATASETS:
        bundle = get_bundle(name)
        dims = bundle.dims
        # Simple Grid over all d dims, columns by filter frequency.
        freq = {
            d: 1 + sum(1 for q in bundle.train if q.filters(d)) for d in dims
        }
        total = sum(freq.values())
        # At Python's per-cell overhead the break-even cell count is far
        # lower than in C++; 64 target cells keeps the middle rungs in the
        # regime where the paper's incremental story is visible.
        target = 64
        columns = {
            d: max(1, int(round(target ** (freq[d] / total)))) for d in dims
        }
        simple = SimpleGridIndex(columns).build(bundle.table)
        heur = heuristic_layout(bundle.table, bundle.train, target_cells=target)
        sort_dim = FloodIndex(heur, flatten="none").build(bundle.table)
        flattened = FloodIndex(heur, flatten="rmi").build(bundle.table)
        learned, _ = build_flood(bundle.table, bundle.train, seed=11)
        rows = []
        for label, index in [
            ("Simple Grid", simple),
            ("+Sort Dim", sort_dim),
            ("+Flattening", flattened),
            ("+Learning", learned),
        ]:
            result = run_workload(index, bundle.test)
            rows.append([label, round(result.avg_total_time * 1e3, 4),
                         round(result.scan_overhead, 2)])
        sections.append(
            format_table(
                ["variant", "avg query time (ms)", "scan overhead"],
                rows,
                title=f"Figure 11 [{name}]: incremental ablation",
            )
        )
    text = "\n\n".join(sections)
    write_result("fig11_ablation", text)
    return text


# ------------------------------------------------------------------- Figure 12
def fig12_scaling(sizes=(5_000, 10_000, 20_000, 40_000, 80_000),
                  selectivities=(1e-4, 1e-3, 1e-2, 1e-1)) -> str:
    """Figure 12: scaling with dataset size and query selectivity (TPC-H)."""
    size_rows = []
    for n in sizes:
        bundle = get_bundle("tpch", n=n, seed=12)
        flood, _ = build_flood(bundle.table, bundle.train, seed=13)
        clustered = build_tuned_baselines(
            bundle.table, bundle.train, include=("Clustered", "Full Scan")
        )
        flood_ms = run_workload(flood, bundle.test).avg_total_time * 1e3
        clustered_ms = run_workload(clustered["Clustered"], bundle.test).avg_total_time * 1e3
        scan_ms = run_workload(clustered["Full Scan"], bundle.test).avg_total_time * 1e3
        size_rows.append([n, round(flood_ms, 4), round(clustered_ms, 4),
                          round(scan_ms, 4)])
    bundle = get_bundle("tpch", n=40_000, seed=14)
    sel_rows = []
    from repro.datasets.tpch import tpch_workload

    for sel in selectivities:
        queries = tpch_workload(bundle.table, num_queries=60, selectivity=sel,
                                seed=15)
        train, test = split_train_test(queries, seed=16)
        flood, _ = build_flood(bundle.table, train, seed=17)
        others = build_tuned_baselines(
            bundle.table, train, include=("Clustered", "Full Scan")
        )
        sel_rows.append([
            sel,
            round(run_workload(flood, test).avg_total_time * 1e3, 4),
            round(run_workload(others["Clustered"], test).avg_total_time * 1e3, 4),
            round(run_workload(others["Full Scan"], test).avg_total_time * 1e3, 4),
        ])
    text = "\n\n".join([
        format_table(["records", "Flood (ms)", "Clustered (ms)", "Full Scan (ms)"],
                     size_rows, title="Figure 12a: varying dataset size (TPC-H)"),
        format_table(["selectivity", "Flood (ms)", "Clustered (ms)", "Full Scan (ms)"],
                     sel_rows, title="Figure 12b: varying query selectivity (TPC-H)"),
    ])
    write_result("fig12_scaling", text)
    return text


# ------------------------------------------------------------------- Figure 13
def fig13_dimensions(dims=(4, 6, 8, 10, 12), n: int = 20_000,
                     num_queries: int = 60) -> str:
    """Figure 13: scaling the number of dimensions on uniform data, plus the
    ratio of each index's time to a full scan (the curse of dimensionality).
    The paper sweeps to d=18; we cap at 12 (the hyperoctree's 2^d fanout is
    intractable in Python beyond that), which covers the crossovers."""
    rows = []
    ratio_rows = []
    for d in dims:
        table = generate_uniform(n=n, d=d, seed=18)
        queries = uniform_workload(table, num_queries=num_queries, seed=19)
        train, test = split_train_test(queries, seed=20)
        flood, _ = build_flood(table, train, seed=21)
        include = ("Full Scan", "Clustered", "Z Order", "Hyperoctree", "K-d tree")
        others = build_tuned_baselines(table, train, include=include)
        times = {"Flood": run_workload(flood, test).avg_total_time * 1e3}
        for idx_name in include:
            index = others[idx_name]
            times[idx_name] = (
                run_workload(index, test).avg_total_time * 1e3 if index else None
            )
        order = ["Flood", "Clustered", "Z Order", "Hyperoctree", "K-d tree",
                 "Full Scan"]
        rows.append([d] + [round(times[k], 4) if times[k] else "N/A" for k in order])
        scan_ms = times["Full Scan"]
        ratio_rows.append(
            [d]
            + [
                round(times[k] / scan_ms, 4) if times[k] else "N/A"
                for k in order
            ]
        )
    header = ["d", "Flood", "Clustered", "Z Order", "Hyperoctree", "K-d tree",
              "Full Scan"]
    text = "\n\n".join([
        format_table(header, rows, title="Figure 13a: query time (ms) vs dimensions"),
        format_table(header, ratio_rows,
                     title="Figure 13b: ratio of query time to full scan"),
    ])
    write_result("fig13_dimensions", text)
    return text


# ------------------------------------------------------------------- Figure 14
def fig14_costmodel(factors=(0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0)) -> str:
    """Figure 14: the scan-time / index-time trade-off as the learned layout
    is scaled around the optimizer's choice (factor 1.0)."""
    bundle, indexes, _, opt = dataset_results("tpch")
    rows = []
    best_factor, best_ms = None, float("inf")
    for factor in factors:
        layout = opt.layout.scaled(factor)
        index = FloodIndex(layout).build(bundle.table)
        result = run_workload(index, bundle.test)
        total_ms = result.avg_total_time * 1e3
        rows.append([
            layout.num_cells,
            round(factor, 3),
            round(total_ms, 4),
            round(result.avg_scan_time * 1e3, 4),
            round(result.avg_index_time * 1e3, 4),
            round(result.scan_overhead, 2),
            round(result.time_per_scan * 1e9, 2),
        ])
        if total_ms < best_ms:
            best_factor, best_ms = factor, total_ms
    note = (
        f"learned optimum at factor 1.0; empirical best at factor {best_factor} "
        "(within noise of 1.0 reproduces the paper's red star)"
    )
    text = format_table(
        ["cells", "scale", "total (ms)", "scan (ms)", "index (ms)",
         "scan overhead", "ns/point"],
        rows,
        title=f"Figure 14: cost trade-off vs number of cells (TPC-H)\n{note}",
    )
    write_result("fig14_costmodel", text)
    return text


# --------------------------------------------------------------------- Table 2
def table2_breakdown() -> str:
    """Table 2: SO, TPS, ST, IT, TT per index per dataset."""
    sections = []
    for name in PAPER_DATASETS:
        _, _, results, _ = dataset_results(name)
        rows = []
        for idx_name, result in results.items():
            if result is None:
                rows.append([idx_name, "N/A", "N/A", "N/A", "N/A", "N/A"])
                continue
            row = result.summary_row()
            rows.append([row["index"], row["SO"], row["TPS_ns"], row["ST_ms"],
                         row["IT_ms"], row["TT_ms"]])
        sections.append(
            format_table(
                ["index", "SO", "TPS (ns)", "ST (ms)", "IT (ms)", "TT (ms)"],
                rows,
                title=f"Table 2 [{name}]: performance breakdown",
            )
        )
    text = "\n\n".join(sections)
    write_result("table2_breakdown", text)
    return text


# --------------------------------------------------------------------- Table 3
def table3_robustness(n: int = 10_000, num_layouts: int = 5,
                      num_queries: int = 50) -> str:
    """Table 3: weight models trained on dataset A, layouts learned for B."""
    bundles = {
        name: get_bundle(name, n=n, num_queries=num_queries, seed=30)
        for name in PAPER_DATASETS
    }
    models = {}
    for name, bundle in bundles.items():
        data = generate_training_examples(
            bundle.table, bundle.train[:20], num_layouts=num_layouts, seed=31
        )
        models[name] = fit_cost_model(data, seed=31)
    rows = []
    diag = {}
    matrix = {}
    for trained_on, model in models.items():
        for target, bundle in bundles.items():
            result = find_optimal_layout(
                bundle.table, bundle.train, model,
                data_sample_size=1500, query_sample_size=25, seed=32,
            )
            index = FloodIndex(result.layout).build(bundle.table)
            ms = run_workload(index, bundle.test).avg_total_time * 1e3
            matrix[(trained_on, target)] = ms
            if trained_on == target:
                diag[target] = ms
    for trained_on in PAPER_DATASETS:
        row = [trained_on]
        for target in PAPER_DATASETS:
            ms = matrix[(trained_on, target)]
            base = diag[target]
            delta = (ms - base) / base * 100 if base else 0.0
            row.append(f"{ms:.3f} ({delta:+.0f}%)")
        rows.append(row)
    text = format_table(
        ["trained on \\ layout for"] + list(PAPER_DATASETS),
        rows,
        title="Table 3: cost-model robustness across datasets (ms, % vs diagonal)",
    )
    write_result("table3_robustness", text)
    return text


# --------------------------------------------------------------------- Table 4
def table4_creation() -> str:
    """Table 4: index creation time (Flood learning + loading vs baselines)."""
    sections = []
    for name in PAPER_DATASETS:
        _, indexes, _, opt = dataset_results(name)
        rows = [
            ["Flood Learning", round(opt.learn_seconds, 3)],
            ["Flood Loading", round(indexes["Flood"].build_seconds, 3)],
            ["Flood Total", round(opt.learn_seconds + indexes["Flood"].build_seconds, 3)],
        ]
        for idx_name, index in indexes.items():
            if idx_name == "Flood":
                continue
            rows.append(
                [idx_name, "N/A" if index is None else round(index.build_seconds, 3)]
            )
        sections.append(
            format_table(
                ["index", "creation time (s)"],
                rows,
                title=f"Table 4 [{name}]: index creation time",
            )
        )
    text = "\n\n".join(sections)
    write_result("table4_creation", text)
    return text


# ------------------------------------------------------------------- Figure 15
def fig15_data_sampling(samples=(200, 1_000, 5_000, 20_000)) -> str:
    """Figure 15: learning time and query time vs dataset sample size."""
    bundle = get_bundle("tpch", seed=40)
    rows = []
    for sample in samples:
        start = time.perf_counter()
        flood, opt = build_flood(
            bundle.table, bundle.train, data_sample_size=sample, seed=41
        )
        learn = time.perf_counter() - start
        ms = run_workload(flood, bundle.test).avg_total_time * 1e3
        rows.append([sample, round(opt.learn_seconds, 3), round(learn, 3),
                     round(ms, 4)])
    text = format_table(
        ["sample rows", "optimize (s)", "learn+build (s)", "avg query (ms)"],
        rows,
        title="Figure 15: sampling the dataset (TPC-H)",
    )
    write_result("fig15_data_sampling", text)
    return text


# ------------------------------------------------------------------- Figure 16
def fig16_query_sampling(samples=(5, 10, 25, 60)) -> str:
    """Figure 16: learning time and query time vs query sample size."""
    bundle = get_bundle("tpch", seed=42)
    rows = []
    for sample in samples:
        flood, opt = build_flood(
            bundle.table, bundle.train,
            data_sample_size=2_000, query_sample_size=sample, seed=43,
        )
        ms = run_workload(flood, bundle.test).avg_total_time * 1e3
        rows.append([sample, round(opt.learn_seconds, 3), round(ms, 4)])
    text = format_table(
        ["sample queries", "optimize (s)", "avg query (ms)"],
        rows,
        title="Figure 16: sampling the query workload (TPC-H)",
    )
    write_result("fig16_query_sampling", text)
    return text


# ------------------------------------------------------------------- Figure 17
def fig17_percell(n: int = 100_000, num_probes: int = 2_000,
                  deltas=(5, 20, 50, 200, 1000)) -> str:
    """Figure 17: per-cell model shoot-out (PLM vs RMI vs binary search) on
    OSM-like timestamps and staggered uniform data, plus the delta
    size/speed trade-off."""
    rng = np.random.default_rng(44)
    osm_ts = np.sort(get_bundle("osm", n=n, seed=45).table.values("timestamp"))
    stagger = np.sort(
        np.concatenate([
            rng.integers(k * 10**7, k * 10**7 + 10**5, size=n // 5)
            for k in range(5)
        ])
    )
    rows = []
    for label, values in (("OSM timestamps", osm_ts), ("Staggered", stagger)):
        probes = values[rng.integers(0, values.size, size=num_probes)]
        plm = PiecewiseLinearModel(values, delta=50)
        rmi = RecursiveModelIndex(values, num_leaves=max(64, int(np.sqrt(values.size))))
        timings = {}
        for model_name, lookup in (
            ("PLM", plm.search_left),
            ("RMI", rmi.search_left),
            ("Binary", lambda v: int(np.searchsorted(values, v, side="left"))),
        ):
            start = time.perf_counter()
            for probe in probes:
                lookup(probe)
            timings[model_name] = (time.perf_counter() - start) / num_probes * 1e9
        rows.append([label] + [round(timings[k], 1) for k in ("PLM", "RMI", "Binary")])
    delta_rows = []
    for delta in deltas:
        plm = PiecewiseLinearModel(osm_ts, delta=delta)
        probes = osm_ts[rng.integers(0, osm_ts.size, size=num_probes)]
        start = time.perf_counter()
        for probe in probes:
            plm.search_left(probe)
        lookup_ns = (time.perf_counter() - start) / num_probes * 1e9
        delta_rows.append([delta, plm.num_segments,
                           round(plm.size_bytes() / 1e3, 2), round(lookup_ns, 1)])
    text = "\n\n".join([
        format_table(["dataset", "PLM (ns)", "RMI (ns)", "Binary (ns)"], rows,
                     title="Figure 17a: per-cell CDF model lookup time"),
        format_table(["delta", "segments", "size (kB)", "lookup (ns)"], delta_rows,
                     title="Figure 17b: PLM delta size/speed trade-off"),
    ])
    write_result("fig17_percell", text)
    return text


# ------------------------------------------------------------- extra ablations
def ablation_refinement() -> str:
    """Beyond the paper: PLM refinement vs binary search vs none inside
    Flood (DESIGN.md design-choice check)."""
    bundle = get_bundle("tpch", seed=50)
    result = find_optimal_layout(
        bundle.table, bundle.train, AnalyticCostModel(),
        data_sample_size=2000, query_sample_size=30, seed=51,
    )
    rows = []
    for refinement in ("plm", "binary", "none"):
        index = FloodIndex(result.layout, refinement=refinement).build(bundle.table)
        wl = run_workload(index, bundle.test)
        rows.append([refinement, round(wl.avg_total_time * 1e3, 4),
                     round(wl.scan_overhead, 2),
                     round(wl.avg_index_time * 1e3, 4)])
    text = format_table(
        ["refinement", "avg query (ms)", "scan overhead", "index+refine (ms)"],
        rows,
        title="Ablation: refinement strategy inside Flood (TPC-H)",
    )
    write_result("ablation_refinement", text)
    return text


def ablation_flatten() -> str:
    """Beyond the paper: RMI flattening vs exact quantiles vs none (OSM)."""
    bundle = get_bundle("osm", seed=52)
    result = find_optimal_layout(
        bundle.table, bundle.train, AnalyticCostModel(),
        data_sample_size=2000, query_sample_size=30, seed=53,
    )
    rows = []
    for flatten in ("rmi", "quantile", "none"):
        index = FloodIndex(result.layout, flatten=flatten).build(bundle.table)
        wl = run_workload(index, bundle.test)
        rows.append([flatten, round(wl.avg_total_time * 1e3, 4),
                     round(wl.scan_overhead, 2),
                     round(index.size_bytes() / 1e3, 2)])
    text = format_table(
        ["flattening", "avg query (ms)", "scan overhead", "index size (kB)"],
        rows,
        title="Ablation: flattening model inside Flood (OSM)",
    )
    write_result("ablation_flatten", text)
    return text


def ablation_conditional(n: int = 60_000, num_queries: int = 60) -> str:
    """Beyond the paper's measurements (but matching its Section 6 claim):
    conditional CDFs on correlated TPC-H dates vs independent flattening —
    "conditional CDFs did not significantly improve performance in our
    benchmarks, but did significantly increase index size"."""
    bundle = get_bundle("tpch", n=n, num_queries=num_queries, seed=60)
    # Force both correlated dates into the grid so conditioning can fire.
    from repro.core.layout import GridLayout

    layout = GridLayout(
        ("ship_date", "receipt_date", "quantity", "order_key"), (8, 8, 1)
    )
    rows = []
    for flatten in ("rmi", "conditional"):
        index = FloodIndex(layout, flatten=flatten).build(bundle.table)
        wl = run_workload(index, bundle.test)
        rows.append([
            flatten,
            round(wl.avg_total_time * 1e3, 4),
            round(wl.scan_overhead, 2),
            round(index.size_bytes() / 1e3, 2),
        ])
    text = format_table(
        ["flattening", "avg query (ms)", "scan overhead", "index size (kB)"],
        rows,
        title=(
            "Ablation: conditional CDFs on correlated dims (TPC-H dates)\n"
            "Paper's Section 6 claim: similar performance, much larger index"
        ),
    )
    write_result("ablation_conditional", text)
    return text


def monetdb_parity(n: int = 50_000, num_queries: int = 30) -> str:
    """Section 7.1 sanity check: our column store's full-scan throughput vs
    a raw numpy scan (standing in for MonetDB; target: within ~5-25%)."""
    bundle = get_bundle("tpch", n=n, num_queries=num_queries, seed=54)
    from repro.baselines import FullScanIndex

    store = FullScanIndex().build(bundle.table)
    store_s = run_workload(store, bundle.test).avg_total_time
    raw = {dim: bundle.table.values(dim) for dim in bundle.dims}
    start = time.perf_counter()
    for query in bundle.test:
        mask = np.ones(n, dtype=bool)
        for dim, (lo, hi) in query.ranges.items():
            mask &= (raw[dim] >= lo) & (raw[dim] <= hi)
        int(np.count_nonzero(mask))
    raw_s = (time.perf_counter() - start) / len(bundle.test)
    text = format_table(
        ["engine", "avg full-scan time (ms)"],
        [["column store (compressed)", round(store_s * 1e3, 4)],
         ["raw numpy arrays", round(raw_s * 1e3, 4)],
         ["overhead", f"{(store_s / raw_s - 1) * 100:.1f}%"]],
        title="Section 7.1: column-store scan parity check",
    )
    write_result("monetdb_parity", text)
    return text
