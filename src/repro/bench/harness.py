"""Index construction and workload execution for the benchmarks.

Baselines are tuned per workload exactly the way the paper tunes them
(Section 7.4): dimension orderings by selectivity, the clustered index on
the most selective dimension, and page sizes picked by trying a small grid
of candidates on the training queries. Flood is built from a layout learned
by the optimizer — no manual tuning.
"""

from __future__ import annotations

import os
import pickle

import numpy as np

from repro.baselines import (
    ClusteredIndex,
    FullScanIndex,
    GridFileIndex,
    HyperoctreeIndex,
    KDTreeIndex,
    RStarTreeIndex,
    UBTreeIndex,
    ZOrderIndex,
)
from repro.core.calibration import calibrate
from repro.core.cost import CostModel
from repro.core.index import FloodIndex
from repro.core.optimizer import find_optimal_layout
from repro.errors import BuildError
from repro.query.stats import WorkloadResult
from repro.storage.visitor import CountVisitor
from repro.workloads.query_gen import most_selective_dim, selectivity_ranked_dims

#: Candidate page sizes tried during tuning (the paper tunes page size per
#: workload; these span the useful range at our scaled-down row counts).
PAGE_SIZE_CANDIDATES = (512, 2048)

#: Baseline registry: name -> factory(dims_ranked, sort_dim, page_size).
BASELINE_NAMES = (
    "Full Scan",
    "Clustered",
    "Grid File",
    "Z Order",
    "UB tree",
    "Hyperoctree",
    "K-d tree",
    "R* Tree",
)


def _make_baseline(name: str, dims_ranked, sort_dim, page_size):
    if name == "Full Scan":
        return FullScanIndex()
    if name == "Clustered":
        return ClusteredIndex(sort_dim=sort_dim)
    if name == "Grid File":
        return GridFileIndex(dims_ranked, page_size=page_size,
                             max_directory_entries=1 << 20)
    if name == "Z Order":
        return ZOrderIndex(dims_ranked, page_size=page_size)
    if name == "UB tree":
        return UBTreeIndex(dims_ranked, page_size=page_size)
    if name == "Hyperoctree":
        return HyperoctreeIndex(dims_ranked, page_size=page_size)
    if name == "K-d tree":
        return KDTreeIndex(dims_ranked, page_size=page_size)
    if name == "R* Tree":
        return RStarTreeIndex(dims_ranked, page_size=page_size)
    raise BuildError(f"unknown baseline {name!r}")


def run_workload(index, queries, visitor_factory=CountVisitor) -> WorkloadResult:
    """Execute all queries on one index, collecting per-query statistics."""
    result = WorkloadResult(index.name)
    for query in queries:
        result.add(index.query(query, visitor_factory()))
    return result


def run_workload_batched(
    index, queries, visitor_factory=CountVisitor, workers: int = 1
) -> WorkloadResult:
    """Execute a workload through the throughput-mode batch engine.

    Only Flood supports batch execution; results and per-query statistics
    are identical to :func:`run_workload`, just faster in aggregate.
    """
    from repro.core.engine import BatchQueryEngine

    engine = BatchQueryEngine(index, workers=workers)
    return engine.run(queries, visitor_factory).workload_result(index.name)


def build_tuned_baselines(
    table,
    train_queries,
    include=BASELINE_NAMES,
    tune_pages: bool = False,
    tuning_queries: int = 10,
) -> dict:
    """Build every baseline, tuned for the training workload.

    Returns name -> built index; baselines whose construction fails the way
    the paper's did (Grid File on heavy skew, R*-tree OOM analog) map to
    ``None`` and are reported as N/A.
    """
    unknown = [name for name in include if name not in BASELINE_NAMES]
    if unknown:
        raise BuildError(f"unknown baselines {unknown}; choose from {BASELINE_NAMES}")
    sort_dim = most_selective_dim(table, train_queries)
    dims_ranked = selectivity_ranked_dims(table, train_queries)
    indexes = {}
    for name in include:
        best = None
        candidates = PAGE_SIZE_CANDIDATES if tune_pages else (512,)
        if name in ("Full Scan", "Clustered"):
            candidates = (512,)
        for page_size in candidates:
            try:
                index = _make_baseline(name, dims_ranked, sort_dim, page_size)
                index.build(table)
            except BuildError:
                continue
            if len(candidates) == 1:
                best = index
                break
            sample = train_queries[:tuning_queries]
            elapsed = run_workload(index, sample).avg_total_time
            if best is None or elapsed < best[0]:
                best = (elapsed, index)
        if best is None:
            indexes[name] = None
        else:
            indexes[name] = best if not isinstance(best, tuple) else best[1]
    return indexes


_default_model_cache: dict = {}


def _model_cache_path(seed: int) -> str:
    cache_dir = os.environ.get(
        "REPRO_CACHE_DIR", os.path.join(os.path.expanduser("~"), ".cache", "repro-flood")
    )
    return os.path.join(cache_dir, f"cost_model_v1_seed{seed}.pkl")


def default_cost_model(seed: int = 0) -> CostModel:
    """The once-per-machine calibrated weight model (Section 4.1.1).

    As in the paper, calibration runs once on an arbitrary synthetic
    dataset — here a 100k-row, 5-dim uniform table with a mixed-selectivity
    workload — and the resulting model is reused for every dataset (Table 3
    shows this transfer is sound). Persisted to ``REPRO_CACHE_DIR`` (default
    ``~/.cache/repro-flood``) so examples and benchmark runs pay the
    calibration cost once per machine, exactly as the paper intends.
    """
    if seed in _default_model_cache:
        return _default_model_cache[seed]
    path = _model_cache_path(seed)
    if os.path.exists(path):
        try:
            with open(path, "rb") as handle:
                model = pickle.load(handle)
            _default_model_cache[seed] = model
            return model
        except (pickle.UnpicklingError, EOFError, AttributeError):
            pass  # stale cache from an older version: recalibrate
    from repro.datasets.synthetic import generate_uniform, uniform_workload

    table = generate_uniform(n=100_000, d=5, seed=seed)
    queries = uniform_workload(table, num_queries=30, seed=seed + 1)
    model = calibrate(table, queries, num_layouts=12, seed=seed)
    _default_model_cache[seed] = model
    try:
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            pickle.dump(model, handle)
    except OSError:
        pass  # read-only filesystem: keep the in-process cache only
    return model


def build_flood(
    table,
    train_queries,
    cost_model: CostModel | None = None,
    data_sample_size: int = 2000,
    query_sample_size: int = 30,
    max_cells: int = 8192,
    seed: int = 0,
    **flood_kwargs,
):
    """Learn a layout on the training workload and build Flood.

    Returns ``(index, optimization_result)``; ``index.build_seconds`` is the
    paper's "loading time", ``result.learn_seconds`` the "learning time".
    """
    cost_model = cost_model or default_cost_model()
    result = find_optimal_layout(
        table,
        train_queries,
        cost_model,
        data_sample_size=data_sample_size,
        query_sample_size=query_sample_size,
        max_cells=max_cells,
        seed=seed,
    )
    index = FloodIndex(result.layout, **flood_kwargs).build(table)
    return index, result


def geometric_speedup(baseline_ms: float, flood_ms: float) -> float:
    """Speedup factor with zero-guard (used in report rows)."""
    if flood_ms <= 0:
        return float("inf")
    return baseline_ms / flood_ms


def summarize(results: dict[str, WorkloadResult | None]) -> list[list]:
    """Rows of (index, avg ms, scan overhead, note) for report tables."""
    rows = []
    for name, result in results.items():
        if result is None:
            rows.append([name, "N/A", "N/A", "construction failed"])
            continue
        overhead = result.scan_overhead
        rows.append(
            [
                name,
                round(result.avg_total_time * 1e3, 4),
                "inf" if np.isinf(overhead) else round(overhead, 2),
                "",
            ]
        )
    return rows
