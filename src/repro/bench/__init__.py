"""Benchmark harness: tuned index construction, workload execution, and
paper-style reporting for every table and figure in Section 7.

- :mod:`repro.bench.harness` -- build tuned baselines and learned Flood
  indexes for a dataset bundle; execute workloads with full statistics.
- :mod:`repro.bench.report` -- plain-text tables/series matching the
  paper's rows, written to stdout and ``results/``.
- :mod:`repro.bench.experiments` -- one driver per paper artifact
  (Tables 1-4, Figures 5 and 7-17) plus two extra ablations.
"""

from repro.bench.harness import (
    build_flood,
    build_tuned_baselines,
    default_cost_model,
    run_workload,
)
from repro.bench.report import format_series, format_table, write_result

__all__ = [
    "build_flood",
    "build_tuned_baselines",
    "default_cost_model",
    "run_workload",
    "format_series",
    "format_table",
    "write_result",
]
