"""Perf-trajectory diffing: compare two runs' ``BENCH_*.json`` artifacts.

CI uploads ``results/BENCH_*.json`` after every run (the perf
trajectory). Until now, seeing whether a PR moved the needle meant
downloading the previous artifact and eyeballing JSON by hand; ``repro
bench-diff`` automates it:

- every ``BENCH_*.json`` present in *both* directories is walked
  recursively and numeric leaves at matching paths are compared;
- metrics whose key names mark them as throughput-like
  (``queries_per_second``, ``speedup``, ``hit_rate``, ...) warn when
  they *drop* by more than the threshold; time-like metrics
  (``seconds``, ``_time``, ``latency``) warn when they *rise*;
- unit-less metrics are reported but never warned on (row counts and
  configuration echoes are not performance);
- the summary prints as a fixed-width table, one row per changed
  metric, with regressions flagged.

Exit code is 0 unless ``fail_on_regression`` is set — on shared CI
runners the diff is a tripwire for humans, not a gate, because noisy
neighbors routinely move wall-clock numbers 10–20%.
"""

from __future__ import annotations

import glob
import json
import math
import os

from repro.bench.report import format_table

#: Key-name fragments marking a metric where *lower* is a regression.
HIGHER_IS_BETTER = (
    "queries_per_second",
    "qps",
    "throughput",
    "speedup",
    "hit_rate",
    "rows_per_second",
    "inserts_per_second",
)
#: Key-name fragments marking a metric where *higher* is a regression.
LOWER_IS_BETTER = ("seconds", "_time", "latency", "_ms", "stall")

#: Default warn threshold: relative change above 20% on a directional
#: metric counts as a regression.
DEFAULT_THRESHOLD = 0.2


def metric_direction(path: str) -> int:
    """+1 when higher is better, -1 when lower is better, 0 undirected.

    The *last* path component decides (a ``queries_per_second`` leaf
    under a ``timings`` group is still a throughput).
    """
    leaf = path.rsplit(".", 1)[-1].lower()
    for fragment in HIGHER_IS_BETTER:
        if fragment in leaf:
            return 1
    for fragment in LOWER_IS_BETTER:
        if fragment in leaf:
            return -1
    return 0


def flatten_metrics(payload, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a JSON payload, keyed by dotted path.

    Lists index by position (``sweep[3].queries_per_second``) — sweep
    grids are deterministic per benchmark version, so positions align
    between runs; a changed grid simply shows up as added/removed paths,
    which are reported, not diffed.
    """
    out: dict[str, float] = {}
    if isinstance(payload, dict):
        items = payload.items()
    elif isinstance(payload, list):
        items = ((f"[{i}]", value) for i, value in enumerate(payload))
    elif isinstance(payload, bool):  # bool is an int subclass; skip it
        return out
    elif isinstance(payload, (int, float)):
        out[prefix] = float(payload)
        return out
    else:
        return out
    for key, value in items:
        if prefix and not str(key).startswith("["):
            path = f"{prefix}.{key}"
        else:
            path = f"{prefix}{key}"
        out.update(flatten_metrics(value, path))
    return out


def load_bench_points(directory: str) -> dict[str, dict]:
    """``BENCH_*.json`` files in ``directory``, keyed by bare name."""
    points = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        name = os.path.splitext(os.path.basename(path))[0]
        try:
            with open(path) as handle:
                points[name] = json.load(handle)
        except (OSError, ValueError):
            continue  # a truncated artifact must not kill the whole diff
    return points


def diff_payloads(
    previous: dict, current: dict, threshold: float = DEFAULT_THRESHOLD
) -> tuple[list[dict], list[dict]]:
    """Compare two runs of one benchmark; returns ``(rows, regressions)``.

    Each row: ``{path, previous, current, change, direction, regressed}``
    with ``change`` the signed relative delta (``None`` when the
    previous value was 0 or either side is missing/non-finite).
    """
    prev_metrics = flatten_metrics(previous)
    curr_metrics = flatten_metrics(current)
    rows, regressions = [], []
    for path in sorted(prev_metrics.keys() | curr_metrics.keys()):
        prev = prev_metrics.get(path)
        curr = curr_metrics.get(path)
        direction = metric_direction(path)
        change = None
        comparable = (
            prev is not None
            and curr is not None
            and math.isfinite(prev)
            and math.isfinite(curr)
        )
        if comparable and prev != 0:
            change = (curr - prev) / abs(prev)
        regressed = (
            change is not None
            and direction != 0
            and direction * change < -threshold
        )
        row = {
            "path": path,
            "previous": prev,
            "current": curr,
            "change": change,
            "direction": direction,
            "regressed": regressed,
        }
        rows.append(row)
        if regressed:
            regressions.append(row)
    return rows, regressions


def _fmt_value(value) -> str:
    if value is None:
        return "-"
    if not math.isfinite(value):  # foreign artifacts may carry inf/nan
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def format_diff(name: str, rows: list[dict], all_rows: bool = False) -> str:
    """A report table for one benchmark's diff.

    By default only *directional* metrics (throughputs and timings) are
    shown; ``all_rows`` includes configuration echoes too.
    """
    shown = [r for r in rows if all_rows or r["direction"] != 0]
    table_rows = []
    for row in shown:
        if row["change"] is None:
            delta = "new" if row["previous"] is None else (
                "gone" if row["current"] is None else "-"
            )
        else:
            delta = f"{row['change'] * 100:+.1f}%"
        flag = "REGRESSED" if row["regressed"] else ""
        table_rows.append(
            [row["path"], _fmt_value(row["previous"]), _fmt_value(row["current"]),
             delta, flag]
        )
    if not table_rows:
        return f"{name}: no directional metrics to compare"
    return format_table(
        ["metric", "previous", "current", "change", ""],
        table_rows,
        title=name,
    )


def run_diff(
    current_dir: str = "results",
    previous_dir: str = "previous-results",
    threshold: float = DEFAULT_THRESHOLD,
    fail_on_regression: bool = False,
    all_rows: bool = False,
) -> int:
    """The ``repro bench-diff`` entry point; returns a process exit code.

    Missing directories or artifacts are reported and skipped, never
    fatal — the very first CI run of a repo has no previous artifact.
    """
    current = load_bench_points(current_dir)
    previous = load_bench_points(previous_dir)
    if not current:
        print(f"bench-diff: no BENCH_*.json under {current_dir!r}; nothing to do")
        return 0
    if not previous:
        print(
            f"bench-diff: no previous artifact under {previous_dir!r}; "
            "skipping (first run?)"
        )
        return 0
    total_regressions = 0
    for name in sorted(current):
        if name not in previous:
            print(f"{name}: new benchmark (no previous point)")
            continue
        rows, regressions = diff_payloads(
            previous[name], current[name], threshold=threshold
        )
        total_regressions += len(regressions)
        print(format_diff(name, rows, all_rows=all_rows))
        print()
    for name in sorted(set(previous) - set(current)):
        print(f"{name}: present in previous run only")
    if total_regressions:
        print(
            f"WARNING: {total_regressions} metric(s) regressed more than "
            f"{threshold * 100:.0f}% vs the previous run"
        )
        if fail_on_regression:
            return 1
    else:
        print(f"bench-diff: no regressions beyond {threshold * 100:.0f}%")
    return 0
