"""Per-query and per-workload execution statistics.

These mirror the paper's instrumentation: Table 2 reports scan overhead
(SO), time per scanned point (TPS), scan time (ST), index time (IT, which
for Flood includes projection and refinement), and total time (TT). The
same counters feed the cost model's features (Section 4.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class QueryStats:
    """Counters and timings for a single query execution."""

    points_scanned: int = 0
    points_matched: int = 0
    cells_visited: int = 0
    exact_points: int = 0
    index_time: float = 0.0
    refine_time: float = 0.0
    scan_time: float = 0.0
    total_time: float = 0.0
    #: Resolved fused-kernel tier the scan ran with ("numba" / "numpy";
    #: "" when the index scans kernel-less). Flat fields, not a nested
    #: dict: QueryStats is shallow-copied (``replace``) by the serving
    #: cache and ``asdict``'d onto the wire.
    kernel_tier: str = ""
    #: Residual-filter code groups answered by the fused single-pass
    #: kernel (the rest took the classic per-run path).
    kernel_groups: int = 0

    @property
    def scan_overhead(self) -> float:
        """Points scanned / points matched (paper's SO). inf for zero matches."""
        if self.points_matched == 0:
            return float("inf") if self.points_scanned else 1.0
        return self.points_scanned / self.points_matched

    @property
    def time_per_scan(self) -> float:
        """Average seconds per scanned point (paper's TPS)."""
        if self.points_scanned == 0:
            return 0.0
        return self.scan_time / self.points_scanned


@dataclass
class WorkloadResult:
    """Aggregate statistics over a workload of queries on one index."""

    index_name: str
    per_query: list[QueryStats] = field(default_factory=list)

    def add(self, stats: QueryStats) -> None:
        """Append one query's statistics."""
        self.per_query.append(stats)

    @property
    def num_queries(self) -> int:
        """Number of queries executed."""
        return len(self.per_query)

    def _mean(self, attr: str) -> float:
        if not self.per_query:
            return 0.0
        return sum(getattr(s, attr) for s in self.per_query) / len(self.per_query)

    @property
    def avg_total_time(self) -> float:
        """Mean end-to-end query time in seconds (paper TT)."""
        return self._mean("total_time")

    @property
    def avg_scan_time(self) -> float:
        """Mean scan time in seconds (paper ST)."""
        return self._mean("scan_time")

    @property
    def avg_index_time(self) -> float:
        """Paper IT: everything that is not scanning (projection, refinement,
        tree traversal, z-value computation)."""
        return self._mean("index_time") + self._mean("refine_time")

    @property
    def scan_overhead(self) -> float:
        """Total points scanned / total points matched across the workload."""
        scanned = sum(s.points_scanned for s in self.per_query)
        matched = sum(s.points_matched for s in self.per_query)
        if matched == 0:
            return float("inf") if scanned else 1.0
        return scanned / matched

    @property
    def time_per_scan(self) -> float:
        """Workload-wide seconds per scanned point (paper TPS)."""
        scanned = sum(s.points_scanned for s in self.per_query)
        if scanned == 0:
            return 0.0
        return sum(s.scan_time for s in self.per_query) / scanned

    def summary_row(self) -> dict:
        """One row of the paper's Table 2 (times in milliseconds / ns)."""
        return {
            "index": self.index_name,
            "SO": round(self.scan_overhead, 2),
            "TPS_ns": round(self.time_per_scan * 1e9, 2),
            "ST_ms": round(self.avg_scan_time * 1e3, 4),
            "IT_ms": round(self.avg_index_time * 1e3, 4),
            "TT_ms": round(self.avg_total_time * 1e3, 4),
        }
