"""Range-predicate queries over hyper-rectangles.

A :class:`Query` is an immutable conjunction of inclusive integer ranges,
one per filtered attribute:

    SELECT agg FROM t WHERE a <= t.y <= b AND c <= t.z <= d

Dimensions absent from the query are unbounded (Section 3.2.1: their range
endpoints are taken as -inf / +inf at projection time).
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.errors import QueryError

UNBOUNDED_LOW = -(2**62)
UNBOUNDED_HIGH = 2**62


class Query:
    """An immutable conjunction of inclusive ranges.

    Parameters
    ----------
    ranges:
        Mapping of dimension name to inclusive ``(low, high)`` integer
        bounds. Ranges with ``low > high`` are rejected.
    """

    __slots__ = ("_ranges",)

    def __init__(self, ranges: Mapping[str, tuple[int, int]]):
        if not ranges:
            raise QueryError("a query needs at least one range")
        cleaned = {}
        for dim, bounds in ranges.items():
            try:
                low, high = bounds
            except (TypeError, ValueError) as exc:
                raise QueryError(f"range for {dim!r} must be a (low, high) pair") from exc
            low, high = int(low), int(high)
            if low > high:
                raise QueryError(f"inverted range for {dim!r}: ({low}, {high})")
            cleaned[dim] = (low, high)
        self._ranges = cleaned

    # ------------------------------------------------------------ construction
    @classmethod
    def equals(cls, dim: str, value: int, **more_ranges) -> "Query":
        """An equality predicate ``dim == value`` (rewritten as a range)."""
        ranges = {dim: (value, value)}
        ranges.update(more_ranges)
        return cls(ranges)

    def with_range(self, dim: str, low: int, high: int) -> "Query":
        """A new query with one range added or replaced."""
        ranges = dict(self._ranges)
        ranges[dim] = (low, high)
        return Query(ranges)

    def without(self, dim: str) -> "Query":
        """A new query with one dimension's filter dropped."""
        ranges = {d: b for d, b in self._ranges.items() if d != dim}
        if not ranges:
            raise QueryError("cannot drop the only filtered dimension")
        return Query(ranges)

    # ----------------------------------------------------------------- access
    @property
    def ranges(self) -> dict[str, tuple[int, int]]:
        """Dim -> inclusive (low, high). Returns a copy."""
        return dict(self._ranges)

    @property
    def dims(self) -> list[str]:
        """Filtered dimension names."""
        return list(self._ranges)

    def filters(self, dim: str) -> bool:
        """Whether the query constrains ``dim``."""
        return dim in self._ranges

    def bounds(self, dim: str) -> tuple[int, int]:
        """Bounds for ``dim``; unbounded sentinels if not filtered."""
        return self._ranges.get(dim, (UNBOUNDED_LOW, UNBOUNDED_HIGH))

    def __len__(self) -> int:
        return len(self._ranges)

    def __eq__(self, other) -> bool:
        return isinstance(other, Query) and self._ranges == other._ranges

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._ranges.items())))

    def __repr__(self) -> str:
        parts = ", ".join(f"{d}∈[{lo},{hi}]" for d, (lo, hi) in self._ranges.items())
        return f"Query({parts})"

    # ------------------------------------------------------------- evaluation
    def match_mask(self, table) -> np.ndarray:
        """Boolean match mask over all rows (brute force; testing/calibration)."""
        mask = np.ones(table.num_rows, dtype=bool)
        for dim, (low, high) in self._ranges.items():
            if dim not in table:
                continue
            values = table.values(dim)
            mask &= (values >= low) & (values <= high)
        return mask

    def selectivity(self, table) -> float:
        """Fraction of rows matching the full predicate (brute force)."""
        if table.num_rows == 0:
            return 0.0
        return float(self.match_mask(table).mean())

    def dim_selectivity(self, table, dim: str) -> float:
        """Fraction of rows matching this dimension's range alone."""
        if not self.filters(dim) or dim not in table or table.num_rows == 0:
            return 1.0
        low, high = self._ranges[dim]
        values = table.values(dim)
        return float(((values >= low) & (values <= high)).mean())
