"""Query model: range predicates over hyper-rectangles plus statistics.

Queries are conjunctions of inclusive ranges over one or more attributes
(Section 3); equality predicates are ranges with equal endpoints. OR clauses
decompose into multiple queries over disjoint ranges, hence only ANDs here.
"""

from repro.query.predicate import Query
from repro.query.stats import QueryStats, WorkloadResult

__all__ = ["Query", "QueryStats", "WorkloadResult"]
