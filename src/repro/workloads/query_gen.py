"""Selectivity-calibrated query synthesis.

The paper's workloads mix range and equality filters, scaled so that the
average query selectivity is ~0.1% (Section 7.3). ``calibrated_range``
picks a range over one attribute hitting a target *marginal* selectivity by
sliding a window over the attribute's empirical quantiles; multi-dimension
templates split the target selectivity evenly across dimensions on the
independence approximation the paper also uses (Section 7.5: "the filter
selectivity along each dimension is the same and is set so that the overall
selectivity is 0.1%").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QueryError
from repro.query.predicate import Query


def calibrated_range(
    sorted_values: np.ndarray,
    selectivity: float,
    rng: np.random.Generator,
) -> tuple[int, int]:
    """An inclusive value range covering ~``selectivity`` of the column.

    ``sorted_values`` must be sorted ascending. The window's quantile start
    is uniform in [0, 1 - selectivity].
    """
    n = sorted_values.size
    if n == 0:
        raise QueryError("cannot calibrate a range on an empty column")
    selectivity = float(np.clip(selectivity, 1.0 / n, 1.0))
    width = max(1, int(round(selectivity * n)))
    start = int(rng.integers(0, max(n - width, 0) + 1))
    low = int(sorted_values[start])
    high = int(sorted_values[min(start + width - 1, n - 1)])
    return low, high


def equality_value(values: np.ndarray, rng: np.random.Generator) -> int:
    """A value drawn from the column (so equality filters always match)."""
    return int(values[int(rng.integers(0, values.size))])


@dataclass
class WorkloadSpec:
    """One query template: which dims are filtered and how.

    Parameters
    ----------
    range_dims:
        Dimensions receiving calibrated range filters.
    equality_dims:
        Dimensions receiving equality filters (selectivity given by the
        column's value frequencies, as in real categorical filters).
    selectivity:
        Target overall selectivity for the range dimensions combined.
    weight:
        Relative frequency of this template in the workload.
    """

    range_dims: tuple[str, ...] = ()
    equality_dims: tuple[str, ...] = ()
    selectivity: float = 1e-3
    weight: float = 1.0

    def dims(self) -> tuple[str, ...]:
        """All dimensions this template filters."""
        return self.range_dims + self.equality_dims


def generate_workload(
    table,
    specs: list[WorkloadSpec],
    num_queries: int,
    seed: int = 0,
) -> list[Query]:
    """Draw ``num_queries`` queries from weighted templates."""
    if not specs:
        raise QueryError("need at least one workload spec")
    rng = np.random.default_rng(seed)
    sorted_cols = {}
    raw_cols = {}
    for spec in specs:
        for dim in spec.dims():
            if dim not in sorted_cols:
                raw_cols[dim] = table.values(dim)
                sorted_cols[dim] = np.sort(raw_cols[dim])
    weights = np.array([spec.weight for spec in specs], dtype=np.float64)
    weights = weights / weights.sum()
    queries = []
    for _ in range(num_queries):
        spec = specs[int(rng.choice(len(specs), p=weights))]
        ranges = {}
        k = len(spec.range_dims)
        per_dim = spec.selectivity ** (1.0 / k) if k else 1.0
        for dim in spec.range_dims:
            ranges[dim] = calibrated_range(sorted_cols[dim], per_dim, rng)
        for dim in spec.equality_dims:
            value = equality_value(raw_cols[dim], rng)
            ranges[dim] = (value, value)
        queries.append(Query(ranges))
    return queries


def split_train_test(queries, train_fraction: float = 0.5, seed: int = 0):
    """Shuffle-split a workload; layouts are learned on train, reported on
    test (Section 7.3)."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(queries))
    cut = int(len(queries) * train_fraction)
    train = [queries[i] for i in order[:cut]]
    test = [queries[i] for i in order[cut:]]
    return train, test


def most_selective_dim(table, queries) -> str:
    """The dimension with the lowest average selectivity across a workload.

    Used to tune the baselines the way the paper does: the clustered
    index's sort dimension and the Z-order bit ordering.
    """
    if not queries:
        raise QueryError("need queries to rank dimensions")
    totals = {dim: 0.0 for dim in table.dims}
    for query in queries:
        for dim in table.dims:
            totals[dim] += query.dim_selectivity(table, dim)
    return min(totals, key=totals.get)


def selectivity_ranked_dims(table, queries) -> list[str]:
    """All table dims, most selective first (for Z-order / k-d ordering)."""
    if not queries:
        return list(table.dims)
    totals = {dim: 0.0 for dim in table.dims}
    for query in queries:
        for dim in table.dims:
            totals[dim] += query.dim_selectivity(table, dim)
    return sorted(table.dims, key=lambda d: totals[d])
