"""Query-workload generation: calibrated selectivities and paper mixes.

- :mod:`repro.workloads.query_gen` -- selectivity-calibrated range/equality
  query synthesis (all paper workloads target ~0.1% selectivity).
- :mod:`repro.workloads.mixes` -- the Figure 9 representative workloads
  (FD, MD, O, Ou, O1, O2, OO, ST).
- :mod:`repro.workloads.random_shift` -- the Figure 10 randomly shifting
  workloads.
"""

from repro.workloads.mixes import WORKLOAD_MIXES, build_mix
from repro.workloads.query_gen import (
    WorkloadSpec,
    calibrated_range,
    generate_workload,
    most_selective_dim,
    split_train_test,
)
from repro.workloads.random_shift import random_workload

__all__ = [
    "WORKLOAD_MIXES",
    "build_mix",
    "WorkloadSpec",
    "calibrated_range",
    "generate_workload",
    "most_selective_dim",
    "split_train_test",
    "random_workload",
]
