"""The Figure 9 representative workload mixes.

The paper evaluates eight workload characters against indexes tuned for the
original OLAP workload:

- ``FD``: fewer dimensions than the index (a strict subset).
- ``MD``: as many dimensions as the index.
- ``O``:  a skewed OLAP workload (some query types more frequent).
- ``Ou``: a uniform OLAP workload (each query type equally likely).
- ``O1``: OLTP point lookups on one primary-key attribute.
- ``O2``: OLTP point lookups on two key attributes.
- ``OO``: an equal split of OLTP and OLAP queries.
- ``ST``: a single query type (same dims, same selectivities).
"""

from __future__ import annotations

import numpy as np

from repro.errors import QueryError
from repro.query.predicate import Query
from repro.workloads.query_gen import WorkloadSpec, generate_workload

WORKLOAD_MIXES = ("FD", "MD", "O", "Ou", "O1", "O2", "OO", "ST")


def _key_dims(table, key_dims):
    if key_dims:
        return list(key_dims)
    # Default: treat the highest-cardinality dims as keys.
    cards = {dim: np.unique(table.values(dim)).size for dim in table.dims}
    ranked = sorted(table.dims, key=lambda d: -cards[d])
    return ranked[:2]


def _point_lookup_queries(table, dims, num_queries, seed):
    rng = np.random.default_rng(seed)
    columns = {dim: table.values(dim) for dim in dims}
    queries = []
    for _ in range(num_queries):
        row = int(rng.integers(0, table.num_rows))
        ranges = {
            dim: (int(columns[dim][row]), int(columns[dim][row])) for dim in dims
        }
        queries.append(Query(ranges))
    return queries


def _olap_specs(dims, selectivity, skewed: bool) -> list[WorkloadSpec]:
    """A handful of OLAP query types over rotating dim subsets."""
    specs = []
    for i in range(min(4, len(dims))):
        subset = tuple(dims[i : i + 2]) if i + 2 <= len(dims) else (dims[i], dims[0])
        weight = (4 - i) if skewed else 1.0
        specs.append(
            WorkloadSpec(range_dims=subset, selectivity=selectivity, weight=weight)
        )
    return specs


def build_mix(
    table,
    mix: str,
    num_queries: int = 100,
    selectivity: float = 1e-3,
    key_dims=None,
    seed: int = 0,
):
    """Generate one of the Figure 9 workloads over ``table``.

    ``key_dims`` identifies the OLTP lookup keys (defaults to the two
    highest-cardinality dimensions).
    """
    dims = list(table.dims)
    if mix not in WORKLOAD_MIXES:
        raise QueryError(f"unknown mix {mix!r}; choose from {WORKLOAD_MIXES}")
    keys = _key_dims(table, key_dims)

    if mix == "FD":
        subset = tuple(dims[: max(1, len(dims) // 2)])
        specs = [WorkloadSpec(range_dims=subset, selectivity=selectivity)]
        return generate_workload(table, specs, num_queries, seed=seed)
    if mix == "MD":
        specs = [WorkloadSpec(range_dims=tuple(dims), selectivity=selectivity)]
        return generate_workload(table, specs, num_queries, seed=seed)
    if mix == "O":
        specs = _olap_specs(dims, selectivity, skewed=True)
        return generate_workload(table, specs, num_queries, seed=seed)
    if mix == "Ou":
        specs = _olap_specs(dims, selectivity, skewed=False)
        return generate_workload(table, specs, num_queries, seed=seed)
    if mix == "O1":
        return _point_lookup_queries(table, keys[:1], num_queries, seed)
    if mix == "O2":
        return _point_lookup_queries(table, keys[:2], num_queries, seed)
    if mix == "OO":
        half = num_queries // 2
        olap = generate_workload(
            table, _olap_specs(dims, selectivity, skewed=True), half, seed=seed
        )
        oltp = _point_lookup_queries(table, keys[:1], num_queries - half, seed + 1)
        return olap + oltp
    # ST: one fixed query type.
    subset = tuple(dims[:2]) if len(dims) >= 2 else (dims[0],)
    specs = [WorkloadSpec(range_dims=subset, selectivity=selectivity)]
    return generate_workload(table, specs, num_queries, seed=seed)
