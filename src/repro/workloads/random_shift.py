"""Randomly shifting workloads (Figure 10).

Each random workload has at most ``max_query_types`` distinct query types;
each type filters up to ``max_dims`` dimensions chosen uniformly at random,
with random per-dimension selectivities constrained so the average total
selectivity is around the target (the paper uses 0.1%) and key attributes
are filtered more selectively.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.query_gen import WorkloadSpec, generate_workload


def random_workload(
    table,
    num_queries: int = 100,
    max_query_types: int = 10,
    max_dims: int | None = None,
    target_selectivity: float = 1e-3,
    seed: int = 0,
):
    """One random workload: random templates, then queries drawn from them."""
    rng = np.random.default_rng(seed)
    dims = list(table.dims)
    if max_dims is None:
        max_dims = len(dims)
    num_types = int(rng.integers(1, max_query_types + 1))
    specs = []
    for _ in range(num_types):
        k = int(rng.integers(1, min(max_dims, len(dims)) + 1))
        chosen = tuple(rng.choice(dims, size=k, replace=False))
        # Jitter the per-type selectivity around the target (log-uniform
        # within ~1/3x to 3x) so types differ, as in the paper's Figure 10.
        jitter = float(np.exp(rng.uniform(-1.1, 1.1)))
        specs.append(
            WorkloadSpec(
                range_dims=chosen,
                selectivity=target_selectivity * jitter,
                weight=float(rng.uniform(0.5, 2.0)),
            )
        )
    return generate_workload(table, specs, num_queries, seed=seed + 1)
