"""Delta-bounded piecewise linear models (PLM) for per-cell refinement.

Section 5.2 of the paper: a PLM models the CDF of a sorted value list by
partitioning it into slices, each approximated by a linear segment that is a
*lower bound* on the true positions, with average absolute error at most a
threshold ``delta`` per segment. The greedy construction walks the distinct
values in increasing order and starts a new slice whenever the running
average error of the current segment would exceed ``delta``.

The lower-bound property (``P(v) <= D(v)`` where ``D(v)`` is the position of
the first occurrence of ``v``) turns the absolute-error condition into a
one-sided sum, and lets rectification search only forward from the
prediction.

Implementation notes: the paper locates segments with a cache-optimized
B-tree over the slice start keys. We build that B-tree (it is what
``size_bytes`` accounts and what Figure 17 benchmarks), but the hot search
path locates segments with ``bisect`` on the same key array — in CPython
that is the honest equivalent of the paper's cache-friendly descent.
Rectification uses a per-segment maximum-error window verified in O(1),
falling back to the segment's full position range (a guaranteed bracket)
on the rare misprediction.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from repro.ml.btree import StaticBTree


def lockstep_searchsorted(values, lo, hi, probes, side) -> np.ndarray:
    """Insertion point of ``probes`` in ``values[lo_i:hi_i)`` per lane.

    Lock-step binary search: every lane halves its own bracket each
    iteration, so a batch of m brackets costs O(log max_width) vectorized
    passes instead of m Python-level searches. ``probes`` may be a scalar
    (shared by all lanes) or an array aligned with ``lo``/``hi``;
    ``values`` must be non-decreasing within each lane's bracket.
    """
    lo = np.asarray(lo, dtype=np.int64).copy()
    hi = np.asarray(hi, dtype=np.int64).copy()
    n = values.size
    active = lo < hi
    while np.any(active):
        mid = (lo + hi) >> 1
        # Inactive lanes may hold lo == hi == n; clip their (unused) load.
        mid_values = values[np.minimum(mid, n - 1)]
        if side == "left":
            go_right = mid_values < probes
        else:
            go_right = mid_values <= probes
        lo = np.where(active & go_right, mid + 1, lo)
        hi = np.where(active & ~go_right, mid, hi)
        active = lo < hi
    return lo


class PiecewiseLinearModel:
    """A delta-bounded lower-bound PLM over a sorted array.

    Parameters
    ----------
    values:
        Sorted (non-decreasing) array to model. Positions are 0-based.
    delta:
        Per-segment average absolute error bound (paper default 50).
    branching:
        Fan-out of the segment-locator B-tree.
    """

    def __init__(self, values: np.ndarray, delta: float = 50.0, branching: int = 16):
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("values must be 1-D")
        if values.size > 1 and np.any(np.diff(values.astype(np.float64)) < 0):
            raise ValueError("values must be sorted")
        if delta <= 0:
            raise ValueError("delta must be positive")
        self._values = values
        self.n = int(values.size)
        self.delta = float(delta)
        self._build()
        self._tree = StaticBTree(
            np.asarray(self._seg_keys, dtype=np.float64), branching=branching
        )

    # ------------------------------------------------------------------ build
    def _build(self) -> None:
        values = self._values
        n = self.n
        if n == 0:
            self._seg_keys = [0.0]
            self._seg_pos = [0.0]
            self._seg_slope = [0.0]
            self._seg_maxerr = [0.0]
            self._seg_end = [0]
            self._finalize_arrays()
            return
        # Distinct values and the position of their first occurrence.
        distinct, first_pos = np.unique(values, return_index=True)
        distinct = distinct.astype(np.float64)
        first_pos = first_pos.astype(np.float64)
        # Counts per distinct value weight the average-error computation so
        # the bound matches the paper's 1/|V| sum over all values.
        counts = np.diff(np.append(first_pos, float(n)))

        seg_keys: list[float] = []
        seg_pos: list[float] = []
        seg_slope: list[float] = []
        seg_maxerr: list[float] = []
        seg_end: list[int] = []
        i = 0
        m = distinct.size
        while i < m:
            start_key = distinct[i]
            start_pos = first_pos[i]
            # Grow the slice greedily. The segment through the first point
            # with the minimum observed candidate slope stays at or below
            # every training point, so all per-point errors are >= 0 and the
            # weighted error sum under slope s decomposes as A - s * B with
            #   A = sum_k c_k * (pos_k - start_pos)
            #   B = sum_k c_k * (key_k - start_key)
            # both of which update in O(1) per accepted point.
            slope = np.inf
            err_a = 0.0
            err_b = 0.0
            weight = counts[i]
            j = i + 1
            while j < m:
                dx = distinct[j] - start_key
                candidate_slope = (first_pos[j] - start_pos) / dx
                new_slope = min(slope, candidate_slope)
                new_a = err_a + counts[j] * (first_pos[j] - start_pos)
                new_b = err_b + counts[j] * dx
                new_weight = weight + counts[j]
                finite_slope = 0.0 if not np.isfinite(new_slope) else new_slope
                avg_err = (new_a - finite_slope * new_b) / new_weight
                if avg_err > self.delta:
                    break
                slope = new_slope
                err_a = new_a
                err_b = new_b
                weight = new_weight
                j += 1
            final_slope = 0.0 if not np.isfinite(slope) else slope
            span = slice(i, j)
            errors = first_pos[span] - (
                start_pos + final_slope * (distinct[span] - start_key)
            )
            seg_keys.append(float(start_key))
            seg_pos.append(float(start_pos))
            seg_slope.append(final_slope)
            seg_maxerr.append(float(errors.max()))
            # First position strictly past this segment's values: the next
            # segment's start position, or n for the last segment. p(v) for
            # any probe routed to this segment lies in [start_pos, end].
            seg_end.append(int(first_pos[j]) if j < m else n)
            i = j
        # Plain-Python lists: scalar indexing in the search hot path is much
        # faster than numpy scalar indexing in CPython.
        self._seg_keys = seg_keys
        self._seg_pos = seg_pos
        self._seg_slope = seg_slope
        self._seg_maxerr = seg_maxerr
        self._seg_end = seg_end
        self._finalize_arrays()

    def _finalize_arrays(self) -> None:
        """Array mirrors of the segment lists for the vectorized batch path."""
        self._seg_keys_arr = np.asarray(self._seg_keys, dtype=np.float64)
        self._seg_pos_arr = np.asarray(self._seg_pos, dtype=np.float64)
        self._seg_slope_arr = np.asarray(self._seg_slope, dtype=np.float64)
        self._seg_maxerr_arr = np.asarray(self._seg_maxerr, dtype=np.float64)
        self._seg_end_arr = np.asarray(self._seg_end, dtype=np.int64)

    # ---------------------------------------------------------------- predict
    @property
    def num_segments(self) -> int:
        return len(self._seg_keys)

    def size_bytes(self) -> int:
        """In-memory footprint: 4 scalars per segment plus the locator tree."""
        return 32 * len(self._seg_keys) + self._tree.size_bytes()

    def _segment_of(self, v: float) -> int:
        return bisect_right(self._seg_keys, v) - 1

    def predict(self, v: float) -> int:
        """Lower-bound position estimate for value ``v``, clamped to range."""
        idx = self._segment_of(float(v))
        if idx < 0:
            return 0
        pos = self._seg_pos[idx] + self._seg_slope[idx] * (float(v) - self._seg_keys[idx])
        return int(min(max(pos, 0.0), float(self.n)))

    # ---------------------------------------------------------------- search
    def search_left(self, v: float) -> int:
        """Exact ``searchsorted(values, v, side='left')`` via model + repair."""
        return self._search(float(v), "left")

    def search_right(self, v: float) -> int:
        """Exact ``searchsorted(values, v, side='right')`` via model + repair."""
        return self._search(float(v), "right")

    def _search(self, v: float, side: str) -> int:
        n = self.n
        if n == 0:
            return 0
        idx = bisect_right(self._seg_keys, v) - 1
        if idx < 0:
            return 0
        seg_start = self._seg_pos[idx]
        seg_end = self._seg_end[idx]
        pred = seg_start + self._seg_slope[idx] * (v - self._seg_keys[idx])
        lo = int(pred) - 1
        if lo < seg_start:
            lo = int(seg_start)
        hi = int(pred + self._seg_maxerr[idx]) + 2
        if hi > seg_end:
            hi = seg_end
        if lo > hi:
            lo = hi
        values = self._values
        # O(1) bracket verification; on failure fall back to the segment's
        # full position range, which is a guaranteed bracket for any probe
        # routed to this segment.
        if side == "left":
            ok = (lo == 0 or values[lo - 1] < v) and (hi >= n or values[hi] >= v)
        else:
            ok = (lo == 0 or values[lo - 1] <= v) and (hi >= n or values[hi] > v)
        if not ok:
            lo = int(seg_start)
            hi = seg_end if seg_end < n else n
        return int(values[lo:hi].searchsorted(v, side=side)) + lo

    def lookups(self, low: float, high: float) -> tuple[int, int]:
        """Refined physical range [start, stop) for values in [low, high]."""
        return self.search_left(low), self.search_right(high)

    # --------------------------------------------------------------- batched
    def search_many(self, probes, side: str = "left") -> np.ndarray:
        """Exact ``np.searchsorted(values, probes, side)`` for a probe batch.

        The batched twin of :meth:`search_left` / :meth:`search_right`: one
        vectorized pass locates every probe's segment, predicts, verifies the
        error-bounded bracket, and finishes with a lock-step binary search
        over the (tight) brackets — so a cell's whole probe batch costs a
        handful of numpy ops instead of two Python calls per probe.

        Parameters
        ----------
        probes:
            Scalar or 1-D array of probe values (cast to float64, like the
            scalar path).
        side:
            ``'left'`` or ``'right'``, with numpy's ``searchsorted``
            semantics.

        Returns
        -------
        int64 array of insertion points, aligned with ``probes``; exact
        (model mispredictions are repaired before the final search).
        """
        if side not in ("left", "right"):
            raise ValueError(f"side must be 'left' or 'right', got {side!r}")
        probes = np.atleast_1d(np.asarray(probes, dtype=np.float64))
        out = np.zeros(probes.shape, dtype=np.int64)
        n = self.n
        if n == 0 or probes.size == 0:
            return out
        values = self._values
        keys = self._seg_keys_arr
        idx = np.searchsorted(keys, probes, side="right") - 1
        routed = idx >= 0  # probes below the first key resolve to 0
        if not np.any(routed):
            return out
        probes = probes[routed]
        idx = idx[routed]
        seg_start = self._seg_pos_arr[idx].astype(np.int64)
        seg_end = self._seg_end_arr[idx]
        pred = self._seg_pos_arr[idx] + self._seg_slope_arr[idx] * (
            probes - keys[idx]
        )
        lo = np.maximum(pred.astype(np.int64) - 1, seg_start)
        hi = np.minimum(
            (pred + self._seg_maxerr_arr[idx]).astype(np.int64) + 2, seg_end
        )
        lo = np.minimum(lo, hi)
        # Bracket verification, exactly as in the scalar path; failures fall
        # back to the segment's full position range (a guaranteed bracket).
        below = values[np.maximum(lo - 1, 0)]
        above = values[np.minimum(hi, n - 1)]
        if side == "left":
            ok = ((lo == 0) | (below < probes)) & ((hi >= n) | (above >= probes))
        else:
            ok = ((lo == 0) | (below <= probes)) & ((hi >= n) | (above > probes))
        lo = np.where(ok, lo, seg_start)
        hi = np.where(ok, hi, np.minimum(seg_end, n))
        # Brackets are a few positions wide (2*delta-ish), so the lock-step
        # search runs O(log delta) passes.
        out[routed] = lockstep_searchsorted(values, lo, hi, probes, side)
        return out

    def lookups_many(self, lows, highs) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`lookups`: refined [start, stop) per (low, high) pair."""
        return self.search_many(lows, "left"), self.search_many(highs, "right")
