"""A static, array-packed B-tree over sorted keys.

The PLM (Section 5.2) "records the smallest v in each slice and forms a
cache-optimized B-Tree over those values". This module provides that
structure: a read-only B-tree whose nodes are packed into one contiguous
array, built bottom-up from a sorted key array. ``lookup`` returns the index
of the last key ``<= v`` (the slice that would contain ``v``).

In CPython the constant factors differ from the paper's C++ B-tree, but the
structure is faithful: fan-out ``branching``, keys grouped node-by-node,
and a root-to-leaf descent of ``log_B(n)`` node probes.
"""

from __future__ import annotations

import numpy as np


class StaticBTree:
    """Read-only B-tree over a sorted 1-D key array.

    Parameters
    ----------
    keys:
        Sorted (non-decreasing) array of keys.
    branching:
        Node fan-out; 16 mimics a cache-line-friendly node of sixteen
        64-bit keys.
    """

    __slots__ = ("keys", "branching", "levels")

    def __init__(self, keys: np.ndarray, branching: int = 16):
        keys = np.asarray(keys)
        if keys.ndim != 1:
            raise ValueError("keys must be a 1-D array")
        if keys.size > 1 and np.any(np.diff(keys.astype(np.float64)) < 0):
            raise ValueError("keys must be sorted")
        if branching < 2:
            raise ValueError("branching must be >= 2")
        self.keys = keys
        self.branching = int(branching)
        # levels[0] is the leaf level (the keys themselves); each upper level
        # holds the first key of every node in the level below.
        self.levels = [keys]
        while self.levels[-1].size > self.branching:
            below = self.levels[-1]
            self.levels.append(below[:: self.branching].copy())

    def __len__(self) -> int:
        return int(self.keys.size)

    @property
    def height(self) -> int:
        """Number of levels, including the leaf level."""
        return len(self.levels)

    def size_bytes(self) -> int:
        """Total bytes of all node arrays (index size accounting)."""
        return int(sum(level.nbytes for level in self.levels))

    def lookup(self, value) -> int:
        """Index of the last key ``<= value``; -1 if value < all keys.

        Descends from the root, at each level narrowing to one node and
        scanning its (at most ``branching``) keys.
        """
        if self.keys.size == 0:
            return -1
        pos = 0
        for depth in range(len(self.levels) - 1, -1, -1):
            level = self.levels[depth]
            lo = pos * self.branching if depth < len(self.levels) - 1 else 0
            hi = min(lo + self.branching, level.size) if depth < len(self.levels) - 1 else level.size
            node = level[lo:hi]
            # Last entry in the node that is <= value.
            offset = int(np.searchsorted(node, value, side="right")) - 1
            if offset < 0:
                return -1
            pos = lo + offset
        return pos

    def lookup_batch(self, values: np.ndarray) -> np.ndarray:
        """Vectorized equivalent of :meth:`lookup` for an array of values."""
        return np.searchsorted(self.keys, np.asarray(values), side="right") - 1
