"""Bagged random-forest regression on top of :mod:`repro.ml.tree`.

Used by the cost model (Section 4.1.1) to predict the weight parameters
``wp``, ``wr``, ``ws`` from layout/query statistics. Bootstrap sampling plus
per-split feature subsampling, predictions averaged across trees.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError
from repro.ml.tree import DecisionTreeRegressor


class RandomForestRegressor:
    """A random forest of CART regression trees.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_leaf:
        Passed through to each tree.
    max_features:
        Features considered per split; ``None`` means ``ceil(sqrt(d))``
        chosen at fit time.
    seed:
        Seed for bootstrap and feature subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: int = 12,
        min_samples_leaf: int = 2,
        max_features: int | None = None,
        seed: int = 0,
    ):
        self.n_estimators = int(n_estimators)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.seed = int(seed)
        self._trees: list[DecisionTreeRegressor] = []

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RandomForestRegressor":
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2 or features.shape[0] != targets.shape[0]:
            raise ValueError("features must be 2-D and aligned with targets")
        if features.shape[0] == 0:
            raise ValueError("cannot fit on zero samples")
        n, d = features.shape
        max_features = self.max_features
        if max_features is None:
            max_features = max(1, int(np.ceil(np.sqrt(d))))
        rng = np.random.default_rng(self.seed)
        self._trees = []
        for _ in range(self.n_estimators):
            sample = rng.integers(0, n, size=n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                rng=np.random.default_rng(rng.integers(0, 2**63)),
            )
            tree.fit(features[sample], targets[sample])
            self._trees.append(tree)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise NotFittedError("RandomForestRegressor.predict before fit")
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        total = np.zeros(features.shape[0], dtype=np.float64)
        for tree in self._trees:
            total += tree.predict(features)
        return total / len(self._trees)

    def score_mae(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Mean absolute error on a held-out set (used by Table 3 checks)."""
        preds = self.predict(features)
        return float(np.abs(preds - np.asarray(targets, dtype=np.float64)).mean())
