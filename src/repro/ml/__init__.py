"""Learned-model substrate used by Flood and the baselines.

This subpackage implements, from scratch, every model the paper relies on:

- :mod:`repro.ml.linear` -- 1-D linear regression and monotone linear splines.
- :mod:`repro.ml.rmi` -- the Recursive Model Index of Kraska et al. [23],
  used to model per-attribute CDFs (flattening, Section 5.1) and as the
  learned clustered index baseline (Section 7.2).
- :mod:`repro.ml.plm` -- the delta-bounded piecewise linear model used for
  per-cell refinement (Section 5.2).
- :mod:`repro.ml.btree` -- a static array-packed B-tree, used by the PLM to
  locate segments and as a traditional-index reference point.
- :mod:`repro.ml.tree` / :mod:`repro.ml.forest` -- CART regression trees and
  bagged random forests, used by the cost model (Section 4.1.1); the offline
  environment has no scikit-learn, so these are our own implementations.
- :mod:`repro.ml.cdf` -- empirical CDF helpers shared by the above.
"""

from repro.ml.btree import StaticBTree
from repro.ml.cdf import EmpiricalCDF, quantile_boundaries
from repro.ml.forest import RandomForestRegressor
from repro.ml.linear import LinearModel, MonotoneLinearSpline
from repro.ml.plm import PiecewiseLinearModel
from repro.ml.rmi import RecursiveModelIndex
from repro.ml.tree import DecisionTreeRegressor

__all__ = [
    "StaticBTree",
    "EmpiricalCDF",
    "quantile_boundaries",
    "RandomForestRegressor",
    "LinearModel",
    "MonotoneLinearSpline",
    "PiecewiseLinearModel",
    "RecursiveModelIndex",
    "DecisionTreeRegressor",
]
