"""Simple 1-D linear models: least-squares fits and monotone splines.

These are the building blocks of the RMI (non-leaf layers are monotone
splines so downstream expert selection is ordered; leaf layers are plain
least-squares regressions, exactly as described in Appendix A of the paper).
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError


class LinearModel:
    """A 1-D least-squares linear regression ``y ~ slope * x + intercept``.

    The closed-form fit degrades gracefully: a single point (or zero x
    variance) yields a constant model predicting the mean of ``y``.
    """

    __slots__ = ("slope", "intercept", "_fitted")

    def __init__(self, slope: float = 0.0, intercept: float = 0.0):
        self.slope = float(slope)
        self.intercept = float(intercept)
        self._fitted = False

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearModel":
        """Fit by ordinary least squares. Empty input raises ValueError."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.size == 0:
            raise ValueError("cannot fit a linear model on empty data")
        x_mean = x.mean()
        y_mean = y.mean()
        var = np.square(x - x_mean).sum()
        if var == 0.0:
            self.slope = 0.0
            self.intercept = y_mean
        else:
            self.slope = float(((x - x_mean) * (y - y_mean)).sum() / var)
            self.intercept = float(y_mean - self.slope * x_mean)
        self._fitted = True
        return self

    def predict(self, x) -> np.ndarray:
        """Predict y for scalar or array x."""
        if not self._fitted and self.slope == 0.0 and self.intercept == 0.0:
            raise NotFittedError("LinearModel.predict called before fit")
        return self.slope * np.asarray(x, dtype=np.float64) + self.intercept

    @classmethod
    def from_endpoints(cls, x0: float, y0: float, x1: float, y1: float) -> "LinearModel":
        """Build the line through two points; vertical pairs become constant."""
        model = cls()
        if x1 == x0:
            model.slope = 0.0
            model.intercept = (y0 + y1) / 2.0
        else:
            model.slope = (y1 - y0) / (x1 - x0)
            model.intercept = y0 - model.slope * x0
        model._fitted = True
        return model


class MonotoneLinearSpline:
    """A monotone non-decreasing piecewise-linear function through knots.

    Used for the non-leaf layers of the RMI ("linear spline models to ensure
    that the models accessed in the following layer are monotonic", paper
    Appendix A) and for exact-quantile flattening in the ablation benches.

    Knots are ``(x_i, y_i)`` with strictly increasing x and non-decreasing y.
    Predictions clamp to the end knots outside the fitted domain.
    """

    __slots__ = ("knots_x", "knots_y")

    def __init__(self, knots_x: np.ndarray, knots_y: np.ndarray):
        knots_x = np.asarray(knots_x, dtype=np.float64)
        knots_y = np.asarray(knots_y, dtype=np.float64)
        if knots_x.ndim != 1 or knots_x.size < 1 or knots_x.shape != knots_y.shape:
            raise ValueError("knots must be equal-length 1-D arrays")
        if np.any(np.diff(knots_x) <= 0):
            raise ValueError("knot x-values must be strictly increasing")
        if np.any(np.diff(knots_y) < 0):
            raise ValueError("knot y-values must be non-decreasing")
        self.knots_x = knots_x
        self.knots_y = knots_y

    @classmethod
    def fit_quantiles(cls, values: np.ndarray, num_knots: int) -> "MonotoneLinearSpline":
        """Fit a spline through ``num_knots`` evenly spaced quantiles of values.

        ``values`` need not be sorted. The resulting spline approximates the
        scaled empirical CDF: it maps a value to its (fractional) rank in
        ``[0, len(values)]``.
        """
        values = np.sort(np.asarray(values, dtype=np.float64))
        n = values.size
        if n == 0:
            raise ValueError("cannot fit a spline on empty data")
        num_knots = max(2, int(num_knots))
        ranks = np.linspace(0, n - 1, num_knots).astype(np.int64)
        xs = values[ranks]
        ys = ranks.astype(np.float64)
        # Collapse duplicate x knots, keeping the largest rank for each value
        # so the spline stays a valid function.
        keep_x = [xs[0]]
        keep_y = [ys[0]]
        for x, y in zip(xs[1:], ys[1:]):
            if x == keep_x[-1]:
                keep_y[-1] = y
            else:
                keep_x.append(x)
                keep_y.append(y)
        if len(keep_x) == 1:
            # Degenerate: all values identical; emit a flat two-knot spline.
            return cls(np.array([keep_x[0], keep_x[0] + 1.0]),
                       np.array([keep_y[0], keep_y[0]]))
        return cls(np.asarray(keep_x), np.asarray(keep_y))

    def predict(self, x) -> np.ndarray:
        """Interpolate at x (scalar or array), clamped to the knot range."""
        return np.interp(np.asarray(x, dtype=np.float64), self.knots_x, self.knots_y)
