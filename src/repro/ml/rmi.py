"""Recursive Model Index (RMI) over a sorted array.

The RMI of Kraska et al. [23] is used in two roles in the paper:

1. **Flattening** (Section 5.1): a per-attribute CDF model that maps a value
   to the fraction of points below it, so grid columns hold equal mass. This
   use requires *monotone* predictions (otherwise a point inside a query
   range could be assigned to a column outside the projected column range).

2. **Clustered-index lookup** (Section 7.2 / Appendix A): predict the
   physical position of a value in the sorted storage order and rectify with
   a bounded local search. This use benefits from least-squares leaves and
   per-leaf error bounds.

Both are served here. The non-leaf (root) layer is a monotone linear spline,
as the paper prescribes; leaves are either least-squares linear regressions
(``leaf='regression'``, with recorded error bounds for exact search) or
endpoint interpolations (``leaf='monotone'``, guaranteeing global
monotonicity for flattening).
"""

from __future__ import annotations

import numpy as np

from repro.errors import BuildError
from repro.ml.linear import LinearModel, MonotoneLinearSpline


class RecursiveModelIndex:
    """A two-layer RMI over a sorted 1-D array.

    Parameters
    ----------
    values:
        Sorted (non-decreasing) array the index models.
    num_leaves:
        Number of leaf experts in the second layer. The paper's clustered
        baseline uses ``sqrt(n)`` and ``n`` experts for its two lower layers;
        ``num_leaves=None`` picks ``max(8, int(sqrt(n)))``.
    leaf:
        ``'regression'`` for least-squares leaves with error bounds, or
        ``'monotone'`` for endpoint-interpolated leaves whose composite
        prediction is globally non-decreasing (required for flattening).
    root_knots:
        Knot count for the monotone spline root layer.
    """

    def __init__(
        self,
        values: np.ndarray,
        num_leaves: int | None = None,
        leaf: str = "regression",
        root_knots: int = 64,
    ):
        values = np.asarray(values)
        if values.ndim != 1:
            raise ValueError("values must be a 1-D array")
        if values.size == 0:
            raise BuildError("cannot build an RMI over empty data")
        if values.size > 1 and np.any(np.diff(values.astype(np.float64)) < 0):
            raise ValueError("values must be sorted")
        if leaf not in ("regression", "monotone"):
            raise ValueError("leaf must be 'regression' or 'monotone'")
        self._values = values
        self.n = int(values.size)
        self.leaf_kind = leaf
        if num_leaves is None:
            num_leaves = max(8, int(np.sqrt(self.n)))
        self.num_leaves = int(max(1, min(num_leaves, self.n)))
        self._build(root_knots)

    # ------------------------------------------------------------------ build
    def _build(self, root_knots: int) -> None:
        values = self._values.astype(np.float64)
        n = self.n
        positions = np.arange(n, dtype=np.float64)
        # Root layer: monotone spline mapping value -> approximate rank,
        # scaled to a leaf id. Monotonicity guarantees ordered expert routing.
        self._root = MonotoneLinearSpline.fit_quantiles(values, root_knots)
        leaf_ids = self._route(values)
        self._leaf_slope = np.zeros(self.num_leaves)
        self._leaf_intercept = np.zeros(self.num_leaves)
        self._leaf_err_lo = np.zeros(self.num_leaves, dtype=np.int64)
        self._leaf_err_hi = np.zeros(self.num_leaves, dtype=np.int64)

        boundaries = np.searchsorted(leaf_ids, np.arange(self.num_leaves + 1))
        # Monotone mode clamps each leaf's output to its position range
        # [boundaries[j], boundaries[j+1]]: leaf outputs are then ordered by
        # leaf id, and since routing is monotone the composite prediction is
        # provably non-decreasing — no batch-dependent repair needed.
        self._leaf_clip_lo = boundaries[:-1].astype(np.float64)
        self._leaf_clip_hi = boundaries[1:].astype(np.float64)
        last_model = LinearModel(0.0, 0.0)
        for leaf in range(self.num_leaves):
            lo, hi = boundaries[leaf], boundaries[leaf + 1]
            if lo == hi:
                # Empty expert: inherit the previous model so routing drift
                # between build and query time stays harmless.
                model = last_model
            elif self.leaf_kind == "monotone":
                model = LinearModel.from_endpoints(
                    values[lo], float(lo), values[hi - 1], float(hi)
                )
                if model.slope < 0:
                    model = LinearModel(0.0, (lo + hi) / 2.0)
            else:
                model = LinearModel().fit(values[lo:hi], positions[lo:hi])
            self._leaf_slope[leaf] = model.slope
            self._leaf_intercept[leaf] = model.intercept
            if lo < hi:
                preds = model.predict(values[lo:hi])
                residual = positions[lo:hi] - preds
                self._leaf_err_lo[leaf] = int(np.floor(residual.min()))
                self._leaf_err_hi[leaf] = int(np.ceil(residual.max()))
            last_model = model
        # Plain-Python copies for the scalar fast path (numpy scalar
        # indexing is ~10x slower than list indexing in CPython).
        self._root_knots_x = self._root.knots_x.tolist()
        self._root_knots_y = self._root.knots_y.tolist()
        self._leaf_slope_list = self._leaf_slope.tolist()
        self._leaf_intercept_list = self._leaf_intercept.tolist()
        self._leaf_clip_lo_list = self._leaf_clip_lo.tolist()
        self._leaf_clip_hi_list = self._leaf_clip_hi.tolist()

    def _route(self, v: np.ndarray) -> np.ndarray:
        """Map values to leaf ids via the root spline."""
        approx_rank = self._root.predict(v)
        ids = np.floor(approx_rank * self.num_leaves / self.n).astype(np.int64)
        return np.clip(ids, 0, self.num_leaves - 1)

    # ---------------------------------------------------------------- predict
    def predict(self, v) -> np.ndarray:
        """Approximate position(s) of value(s) v in the sorted array."""
        v = np.asarray(v, dtype=np.float64)
        scalar = v.ndim == 0
        v = np.atleast_1d(v)
        ids = self._route(v)
        pred = self._leaf_slope[ids] * v + self._leaf_intercept[ids]
        if self.leaf_kind == "monotone":
            pred = np.clip(pred, self._leaf_clip_lo[ids], self._leaf_clip_hi[ids])
        pred = np.clip(pred, 0.0, float(self.n))
        return float(pred[0]) if scalar else pred

    def cdf(self, v) -> np.ndarray:
        """Approximate CDF value(s) in [0, 1]: predicted rank / n."""
        return self.predict(v) / self.n

    def predict_scalar(self, v: float) -> float:
        """Scalar fast path for :meth:`predict` (pure-Python arithmetic).

        Query projection evaluates the CDF at exactly two points per
        dimension; the vectorized path's numpy overhead dominates there.
        Matches ``predict`` for scalar inputs except for the monotone batch
        repair, which for a single point is a no-op.
        """
        knots_x = self._root_knots_x
        knots_y = self._root_knots_y
        v = float(v)
        if v <= knots_x[0]:
            rank = knots_y[0]
        elif v >= knots_x[-1]:
            rank = knots_y[-1]
        else:
            from bisect import bisect_right

            j = bisect_right(knots_x, v)
            x0, x1 = knots_x[j - 1], knots_x[j]
            y0, y1 = knots_y[j - 1], knots_y[j]
            rank = y0 + (y1 - y0) * (v - x0) / (x1 - x0)
        leaf = int(rank * self.num_leaves / self.n)
        if leaf < 0:
            leaf = 0
        elif leaf >= self.num_leaves:
            leaf = self.num_leaves - 1
        pred = self._leaf_slope_list[leaf] * v + self._leaf_intercept_list[leaf]
        if self.leaf_kind == "monotone":
            lo = self._leaf_clip_lo_list[leaf]
            hi = self._leaf_clip_hi_list[leaf]
            if pred < lo:
                pred = lo
            elif pred > hi:
                pred = hi
        if pred < 0.0:
            return 0.0
        if pred > self.n:
            return float(self.n)
        return pred

    def cdf_scalar(self, v: float) -> float:
        """Scalar fast path for :meth:`cdf`."""
        return self.predict_scalar(v) / self.n

    # ----------------------------------------------------------------- search
    def search_left(self, v: float) -> int:
        """Exact ``searchsorted(values, v, side='left')`` using error bounds."""
        return self._search(float(v), side="left")

    def search_right(self, v: float) -> int:
        """Exact ``searchsorted(values, v, side='right')`` using error bounds."""
        return self._search(float(v), side="right")

    def _search(self, v: float, side: str) -> int:
        leaf = int(self._route(np.asarray([v]))[0])
        pred = self._leaf_slope[leaf] * v + self._leaf_intercept[leaf]
        lo = int(pred + self._leaf_err_lo[leaf]) - 1
        hi = int(pred + self._leaf_err_hi[leaf]) + 2
        lo = max(0, min(lo, self.n))
        hi = max(0, min(hi, self.n))
        # The insertion point p must satisfy lo <= p <= hi for the sliced
        # searchsorted below to be globally exact. The error bounds cover the
        # leaf's own training points; values routed to a different leaf than
        # at build time (possible only at expert boundaries) are repaired by
        # exponential widening.
        values = self._values
        if side == "left":
            left_bad = lambda idx: values[idx] >= v  # p could be < lo
            right_bad = lambda idx: values[idx] < v  # p could be > hi
        else:
            left_bad = lambda idx: values[idx] > v
            right_bad = lambda idx: values[idx] <= v
        step = 64
        while lo > 0 and left_bad(lo - 1):
            lo = max(0, lo - step)
            step *= 2
        step = 64
        while hi < self.n and right_bad(hi):
            hi = min(self.n, hi + step)
            step *= 2
        return int(np.searchsorted(values[lo:hi], v, side=side)) + lo

    def size_bytes(self) -> int:
        """In-memory footprint of the model arrays (not the data)."""
        root = self._root.knots_x.nbytes + self._root.knots_y.nbytes
        leaves = (
            self._leaf_slope.nbytes
            + self._leaf_intercept.nbytes
            + self._leaf_err_lo.nbytes
            + self._leaf_err_hi.nbytes
        )
        return int(root + leaves)
