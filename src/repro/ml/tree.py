"""CART regression trees, implemented on numpy.

The cost model (Section 4.1.1) trains "a random forest regression model to
predict the weights based on the statistics". The offline environment has no
scikit-learn, so this module provides the underlying regression tree: greedy
variance-reduction splits, depth and leaf-size limits, and optional feature
subsampling for forest use.

Trees are stored in flat arrays (feature, threshold, children, value) so
prediction is a vectorized descent.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError

_LEAF = -1


class DecisionTreeRegressor:
    """A greedy CART regression tree.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_samples_leaf:
        Minimum training samples in each leaf.
    min_samples_split:
        Minimum samples required to attempt a split.
    max_features:
        If not None, number of candidate features per split (sampled without
        replacement with ``rng``); this is the randomness random forests add.
    rng:
        ``numpy.random.Generator`` for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_leaf: int = 2,
        min_samples_split: int = 4,
        max_features: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.min_samples_split = int(min_samples_split)
        self.max_features = max_features
        self._rng = rng or np.random.default_rng(0)
        self._fitted = False

    # -------------------------------------------------------------------- fit
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "DecisionTreeRegressor":
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must be 2-D (samples x features)")
        if features.shape[0] != targets.shape[0]:
            raise ValueError("features and targets disagree on sample count")
        if features.shape[0] == 0:
            raise ValueError("cannot fit on zero samples")
        # Growable flat representation; lists are appended during the
        # recursive build then frozen into arrays.
        self._feat: list[int] = []
        self._thresh: list[float] = []
        self._left: list[int] = []
        self._right: list[int] = []
        self._value: list[float] = []
        self._grow(features, targets, np.arange(features.shape[0]), depth=0)
        self.feature_ = np.asarray(self._feat, dtype=np.int64)
        self.threshold_ = np.asarray(self._thresh, dtype=np.float64)
        self.left_ = np.asarray(self._left, dtype=np.int64)
        self.right_ = np.asarray(self._right, dtype=np.int64)
        self.value_ = np.asarray(self._value, dtype=np.float64)
        del self._feat, self._thresh, self._left, self._right, self._value
        self._fitted = True
        return self

    def _new_node(self) -> int:
        self._feat.append(_LEAF)
        self._thresh.append(0.0)
        self._left.append(_LEAF)
        self._right.append(_LEAF)
        self._value.append(0.0)
        return len(self._feat) - 1

    def _grow(self, features, targets, idx, depth) -> int:
        node = self._new_node()
        y = targets[idx]
        self._value[node] = float(y.mean())
        if (
            depth >= self.max_depth
            or idx.size < self.min_samples_split
            or np.all(y == y[0])
        ):
            return node
        split = self._best_split(features, targets, idx)
        if split is None:
            return node
        feat, thresh = split
        mask = features[idx, feat] <= thresh
        left_idx = idx[mask]
        right_idx = idx[~mask]
        self._feat[node] = feat
        self._thresh[node] = thresh
        self._left[node] = self._grow(features, targets, left_idx, depth + 1)
        self._right[node] = self._grow(features, targets, right_idx, depth + 1)
        return node

    def _best_split(self, features, targets, idx):
        """Best (feature, threshold) by weighted-variance reduction, or None."""
        num_features = features.shape[1]
        if self.max_features is not None and self.max_features < num_features:
            candidates = self._rng.choice(
                num_features, size=self.max_features, replace=False
            )
        else:
            candidates = np.arange(num_features)
        y = targets[idx]
        n = idx.size
        base_sse = float(np.square(y - y.mean()).sum())
        best = None
        best_sse = base_sse - 1e-12
        for feat in candidates:
            x = features[idx, feat]
            order = np.argsort(x, kind="stable")
            xs = x[order]
            ys = y[order]
            # Candidate split positions: between distinct consecutive values,
            # respecting min_samples_leaf on both sides.
            prefix = np.cumsum(ys)
            prefix_sq = np.cumsum(np.square(ys))
            total = prefix[-1]
            total_sq = prefix_sq[-1]
            positions = np.arange(self.min_samples_leaf, n - self.min_samples_leaf + 1)
            if positions.size == 0:
                continue
            valid = xs[positions - 1] < xs[np.minimum(positions, n - 1)]
            positions = positions[valid]
            if positions.size == 0:
                continue
            left_n = positions.astype(np.float64)
            left_sum = prefix[positions - 1]
            left_sq = prefix_sq[positions - 1]
            right_n = n - left_n
            right_sum = total - left_sum
            right_sq = total_sq - left_sq
            sse = (
                left_sq
                - np.square(left_sum) / left_n
                + right_sq
                - np.square(right_sum) / right_n
            )
            k = int(np.argmin(sse))
            if sse[k] < best_sse:
                best_sse = float(sse[k])
                pos = positions[k]
                # Midpoint threshold between the straddling values.
                best = (int(feat), float((xs[pos - 1] + xs[pos]) / 2.0))
        return best

    # ---------------------------------------------------------------- predict
    def predict(self, features: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError("DecisionTreeRegressor.predict before fit")
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        nodes = np.zeros(features.shape[0], dtype=np.int64)
        active = self.feature_[nodes] != _LEAF
        while np.any(active):
            rows = np.nonzero(active)[0]
            cur = nodes[rows]
            go_left = (
                features[rows, self.feature_[cur]] <= self.threshold_[cur]
            )
            nodes[rows[go_left]] = self.left_[cur[go_left]]
            nodes[rows[~go_left]] = self.right_[cur[~go_left]]
            active = self.feature_[nodes] != _LEAF
        return self.value_[nodes]

    @property
    def node_count(self) -> int:
        if not self._fitted:
            raise NotFittedError("tree not fitted")
        return int(self.feature_.size)
