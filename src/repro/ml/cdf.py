"""Empirical CDF helpers shared across the learned models."""

from __future__ import annotations

import numpy as np


class EmpiricalCDF:
    """The exact empirical CDF of a sample, evaluated by binary search.

    This is the "ground truth" that learned CDF models (RMI, PLM) are
    approximating; it is also used directly by the exact-quantile flattening
    ablation. ``evaluate(v)`` returns the fraction of points ``<= v``.
    """

    __slots__ = ("sorted_values", "n")

    def __init__(self, values: np.ndarray):
        values = np.asarray(values)
        if values.size == 0:
            raise ValueError("cannot build a CDF on empty data")
        self.sorted_values = np.sort(values)
        self.n = int(values.size)

    def evaluate(self, v) -> np.ndarray:
        """Fraction of sample points <= v, in [0, 1]."""
        ranks = np.searchsorted(self.sorted_values, np.asarray(v), side="right")
        return ranks / self.n

    def rank(self, v) -> np.ndarray:
        """Number of sample points <= v (the unscaled CDF)."""
        return np.searchsorted(self.sorted_values, np.asarray(v), side="right")


def quantile_boundaries(values: np.ndarray, num_parts: int) -> np.ndarray:
    """Boundary values splitting ``values`` into ``num_parts`` equal-mass parts.

    Returns ``num_parts - 1`` interior boundaries b_1..b_{k-1} such that
    partitioning by ``searchsorted(boundaries, v, side='right')`` assigns
    roughly ``len(values) / num_parts`` points per part. Duplicates may make
    some parts larger; boundaries are not deduplicated so the part count is
    stable.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    values = np.sort(np.asarray(values))
    if values.size == 0:
        raise ValueError("cannot compute boundaries of empty data")
    positions = (np.arange(1, num_parts) * values.size) // num_parts
    return values[positions]
